// Package espice is a from-scratch Go reproduction of eSPICE —
// probabilistic load shedding from input event streams in complex event
// processing (Slo, Bhowmik, Rothermel; Middleware '19).
//
// The package is a facade over the implementation packages:
//
//   - internal/event, window, pattern, operator, queue: a window-based
//     CEP engine (sequence / any / repetition operators, first & last
//     selection policies, consumed & zero consumption policies).
//   - internal/core: the eSPICE contribution — the (type, position)
//     utility model, CDT threshold tables, window partitioning, overload
//     detector, and the O(1) load shedder.
//   - internal/baseline: the BL comparator (He et al. style) and a
//     random shedder.
//   - internal/datasets: synthetic NYSE-stock and RTLS-soccer streams.
//   - internal/queries: the paper's evaluation queries Q1–Q4.
//   - internal/sim and internal/runtime: a deterministic discrete-event
//     simulator and a live goroutine/channel pipeline.
//   - internal/harness: the experiment pipeline regenerating every table
//     and figure of the paper's evaluation.
//
// Quick start:
//
//	meta, evs, _ := espice.GenerateRTLS(espice.RTLSConfig{DurationSec: 1200, Seed: 1})
//	q, _ := espice.Q1(meta, 4, espice.SelectFirst, 15)
//	train, eval := espice.SplitHalf(evs)
//	res, _ := espice.RunExperiment(espice.ExperimentConfig{
//	    Query: q, Train: train, Eval: eval, OverloadFactor: 1.2,
//	}, espice.ShedESPICE)
//	fmt.Println(res.Quality)
package espice

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/parallel"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/tesla"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/window"
)

// Event model.
type (
	// Event is a primitive event: meta-data plus attribute values.
	Event = event.Event
	// Type is an interned event type id.
	Type = event.Type
	// Kind discriminates application-level event variants.
	Kind = event.Kind
	// Time is a virtual timestamp in microseconds.
	Time = event.Time
	// Registry interns event type names.
	Registry = event.Registry
	// Schema names event attribute slots.
	Schema = event.Schema
)

// Event model constants.
const (
	KindNone       = event.KindNone
	KindRising     = event.KindRising
	KindFalling    = event.KindFalling
	KindPossession = event.KindPossession
	KindDefend     = event.KindDefend
	KindPosition   = event.KindPosition

	Microsecond = event.Microsecond
	Millisecond = event.Millisecond
	Second      = event.Second
	Minute      = event.Minute
)

// NewRegistry returns an empty type registry.
func NewRegistry() *Registry { return event.NewRegistry() }

// NewSchema builds an attribute schema.
func NewSchema(names ...string) *Schema { return event.NewSchema(names...) }

// Windowing.
type (
	// WindowSpec describes a windowing policy (count/time based, opened
	// by slide or logical predicate).
	WindowSpec = window.Spec
	// WindowMode selects count- or time-based measurement.
	WindowMode = window.Mode
	// Window is one window instance.
	Window = window.Window
	// WindowEntry is an event kept in a window with its position.
	WindowEntry = window.Entry
)

// Window modes.
const (
	ModeCount = window.ModeCount
	ModeTime  = window.ModeTime
)

// Patterns.
type (
	// Pattern is a sequence pattern with policies.
	Pattern = pattern.Pattern
	// PatternStep is one element of a pattern.
	PatternStep = pattern.Step
	// CompiledPattern is a validated, matchable pattern.
	CompiledPattern = pattern.Compiled
	// SelectionPolicy picks instances (first/last).
	SelectionPolicy = pattern.SelectionPolicy
	// ConsumptionPolicy controls instance reuse.
	ConsumptionPolicy = pattern.ConsumptionPolicy
	// Predicate tests event content.
	Predicate = pattern.Predicate
)

// Pattern policies.
const (
	SelectFirst = pattern.SelectFirst
	SelectLast  = pattern.SelectLast
	ConsumeZero = pattern.ConsumeZero
	Consumed    = pattern.Consumed
)

// MatchScratch is the reusable per-goroutine working memory of the
// matcher: pass one to CompiledPattern.MatchWith/MatchAllWith and
// steady-state matching allocates nothing. The zero value is ready.
type MatchScratch = pattern.MatchScratch

// CompilePattern validates a pattern for matching.
func CompilePattern(p Pattern) (*CompiledPattern, error) { return pattern.Compile(p) }

// MustCompilePattern is CompilePattern panicking on error, for
// statically-known patterns in examples and tests.
func MustCompilePattern(p Pattern) *CompiledPattern { return pattern.MustCompile(p) }

// Operator.
type (
	// Operator is a CEP operator instance.
	Operator = operator.Operator
	// OperatorConfig assembles an operator.
	OperatorConfig = operator.Config
	// ComplexEvent is a detected situation.
	ComplexEvent = operator.ComplexEvent
	// ShedDecider is the per-membership shedding decision interface.
	ShedDecider = operator.Decider
	// BatchingShedDecider is the optional ShedDecider extension that
	// tallies decision counters per processing batch instead of per
	// membership; the operator and the sharded runtime prefer it
	// automatically (core.Shedder implements it).
	BatchingShedDecider = operator.BatchingDecider
	// WindowMatcher bundles compiled patterns with reusable match
	// scratch for allocation-free per-window matching; one per
	// processing goroutine.
	WindowMatcher = operator.Matcher
)

// NewOperator builds a CEP operator.
func NewOperator(cfg OperatorConfig) (*Operator, error) { return operator.New(cfg) }

// NewWindowMatcher builds a matcher over compiled patterns; maxMatches
// <= 0 defaults to one complex event per window.
func NewWindowMatcher(patterns []*CompiledPattern, maxMatches int) *WindowMatcher {
	return operator.NewMatcher(patterns, maxMatches)
}

// eSPICE core.
type (
	// Model is the trained utility model.
	Model = core.Model
	// ModelBuilder accumulates training statistics.
	ModelBuilder = core.ModelBuilder
	// ModelBuilderConfig configures model construction.
	ModelBuilderConfig = core.ModelBuilderConfig
	// UtilityTable is UT: utility per (type, position bin).
	UtilityTable = core.UtilityTable
	// CDT holds cumulative utility occurrences per partition.
	CDT = core.CDT
	// Partitioning is the dropping-interval split of a window.
	Partitioning = core.Partitioning
	// Shedder is the O(1) eSPICE load shedder.
	Shedder = core.Shedder
	// OverloadDetector implements Section 3.4.
	OverloadDetector = core.OverloadDetector
	// DetectorConfig configures the detector.
	DetectorConfig = core.DetectorConfig
	// Decision is one detector evaluation outcome.
	Decision = core.Decision
)

// MaxUtility is the top of the utility scale (100).
const MaxUtility = core.MaxUtility

// NewModelBuilder returns a statistics accumulator for model training.
func NewModelBuilder(cfg ModelBuilderConfig) (*ModelBuilder, error) {
	return core.NewModelBuilder(cfg)
}

// NewUtilityTable allocates a zeroed M x N utility table.
func NewUtilityTable(types, n, binSize int) (*UtilityTable, error) {
	return core.NewUtilityTable(types, n, binSize)
}

// NewModelFromTable assembles a model from an explicit utility table and
// position shares (e.g. the paper's running example).
func NewModelFromTable(ut *UtilityTable, shares [][]float64) (*Model, error) {
	return core.NewModelFromTable(ut, shares)
}

// NewShedder returns an inactive eSPICE shedder for the model.
func NewShedder(m *Model) (*Shedder, error) { return core.NewShedder(m) }

// NewOverloadDetector builds the queue-monitoring detector.
func NewOverloadDetector(cfg DetectorConfig) (*OverloadDetector, error) {
	return core.NewOverloadDetector(cfg)
}

// ComputePartitioning derives dropping intervals per Section 3.4.
func ComputePartitioning(ws int, qmax, f float64) Partitioning {
	return core.ComputePartitioning(ws, qmax, f)
}

// BuildCDT computes cumulative utility occurrences (Algorithm 1).
func BuildCDT(m *Model, part Partitioning) (*CDT, error) { return core.BuildCDT(m, part) }

// ChooseF selects the trigger fraction f by utility clustering.
func ChooseF(m *Model, ws int, qmax, xEstimate float64, candidates []float64) float64 {
	return core.ChooseF(m, ws, qmax, xEstimate, candidates)
}

// Baselines.
type (
	// BL is the baseline shedder after He et al.
	BL = baseline.BL
	// BLConfig configures BL.
	BLConfig = baseline.BLConfig
	// RandomShedder drops uniformly at random.
	RandomShedder = baseline.Random
)

// NewBL builds the baseline shedder.
func NewBL(cfg BLConfig) (*BL, error) { return baseline.NewBL(cfg) }

// NewRandomShedder builds the random shedder.
func NewRandomShedder(seed int64) *RandomShedder { return baseline.NewRandom(seed) }

// Datasets.
type (
	// NYSEConfig parameterizes the synthetic stock stream.
	NYSEConfig = datasets.NYSEConfig
	// NYSEMeta describes a generated stock stream.
	NYSEMeta = datasets.NYSEMeta
	// RTLSConfig parameterizes the synthetic soccer stream.
	RTLSConfig = datasets.RTLSConfig
	// RTLSMeta describes a generated soccer stream.
	RTLSMeta = datasets.RTLSMeta
)

// GenerateNYSE produces the synthetic stock-quote stream.
func GenerateNYSE(cfg NYSEConfig) (*NYSEMeta, []Event, error) { return datasets.GenerateNYSE(cfg) }

// GenerateRTLS produces the synthetic soccer stream.
func GenerateRTLS(cfg RTLSConfig) (*RTLSMeta, []Event, error) { return datasets.GenerateRTLS(cfg) }

// Queries.
type (
	// Query bundles a window spec and patterns.
	Query = queries.Query
)

// Q1 builds the soccer man-marking query.
func Q1(meta *RTLSMeta, n int, policy SelectionPolicy, windowSec int) (Query, error) {
	return queries.Q1(meta, n, policy, windowSec)
}

// Q2 builds the stock-influence query.
func Q2(meta *NYSEMeta, n int, policy SelectionPolicy, windowSec int) (Query, error) {
	return queries.Q2(meta, n, policy, windowSec)
}

// Q3 builds the 20-symbol exact-sequence query.
func Q3(meta *NYSEMeta, policy SelectionPolicy, ws int) (Query, error) {
	return queries.Q3(meta, policy, ws)
}

// Q4 builds the sequence-with-repetition query.
func Q4(meta *NYSEMeta, policy SelectionPolicy, ws int) (Query, error) {
	return queries.Q4(meta, policy, ws)
}

// Q4HotSymbolIDs returns the symbol ids Q4 needs generated "hot".
func Q4HotSymbolIDs(cfg NYSEConfig) []int { return queries.Q4HotSymbolIDs(cfg) }

// Metrics.
type (
	// Quality summarizes false negatives/positives vs. ground truth.
	Quality = metrics.Quality
	// LatencyTrace records per-event latencies.
	LatencyTrace = metrics.LatencyTrace
)

// CompareQuality matches complex-event sets by identity.
func CompareQuality(truth, detected []ComplexEvent) Quality {
	return metrics.CompareQuality(truth, detected)
}

// Simulation and experiments.
type (
	// SimConfig parameterizes the discrete-event simulator.
	SimConfig = sim.Config
	// SimResult carries simulation outputs.
	SimResult = sim.Result
	// SimController reacts to detector decisions.
	SimController = sim.Controller
	// ExperimentConfig parameterizes a quality experiment.
	ExperimentConfig = harness.RunConfig
	// ExperimentResult is the outcome of an experiment run.
	ExperimentResult = harness.RunResult
	// TrainResult carries trained model and statistics.
	TrainResult = harness.TrainResult
	// ShedderKind selects the strategy under test.
	ShedderKind = harness.ShedderKind
	// Figure is a reproduced table/figure.
	Figure = harness.Figure
	// FigureSeries is one line of a figure.
	FigureSeries = harness.Series
	// ExperimentScale bounds dataset sizes and sweeps.
	ExperimentScale = harness.Scale
)

// Shedder kinds.
const (
	ShedNone   = harness.ShedNone
	ShedESPICE = harness.ShedESPICE
	ShedBL     = harness.ShedBL
	ShedRandom = harness.ShedRandom
)

// SimRun replays events through the queueing simulator.
func SimRun(cfg SimConfig, events []Event, op *Operator, ctrl SimController) (*SimResult, error) {
	return sim.Run(cfg, events, op, ctrl)
}

// Train learns the utility model from an unshed stream.
func Train(q Query, events []Event, binSize, n int) (*TrainResult, error) {
	return harness.Train(q, events, binSize, n)
}

// RunExperiment executes a full train/truth/shed/compare pipeline.
func RunExperiment(cfg ExperimentConfig, kind ShedderKind) (*ExperimentResult, error) {
	return harness.RunExperiment(cfg, kind)
}

// EvalWithModel runs the ground-truth pass and the overloaded shedding
// pass for a pre-trained model — e.g. one produced (and hot-swapped) by
// the online lifecycle — without a training pass.
func EvalWithModel(cfg ExperimentConfig, tr *TrainResult, kind ShedderKind) (*ExperimentResult, error) {
	return harness.EvalWithModel(cfg, tr, kind)
}

// SplitHalf divides a stream into training and evaluation halves.
func SplitHalf(evs []Event) (train, eval []Event) { return harness.SplitHalf(evs) }

// DefaultScale mirrors the paper's sweeps.
func DefaultScale() ExperimentScale { return harness.DefaultScale() }

// QuickScale is a reduced sweep for fast runs.
func QuickScale() ExperimentScale { return harness.QuickScale() }

// Live runtime.
type (
	// Pipeline is a live goroutine-based CEP deployment. Set
	// PipelineConfig.Shards > 1 for the sharded multi-operator pipeline:
	// windows are distributed round-robin over parallel operator
	// instances and complex events are merged back in window-close order.
	Pipeline = runtime.Pipeline
	// PipelineConfig assembles a pipeline.
	PipelineConfig = runtime.Config
	// PipelineStats is a counter snapshot.
	PipelineStats = runtime.Stats
	// PipelineShardStats is one shard's counter snapshot.
	PipelineShardStats = runtime.ShardStats
	// MultiController fans detector decisions out to several controllers,
	// commanding per-shard shedders in lockstep.
	MultiController = runtime.MultiController
)

// NewPipeline builds a live pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) { return runtime.New(cfg) }

// Online model lifecycle.
type (
	// LifecycleConfig enables in-flight model training on a pipeline (or
	// an engine query): the runtime samples its own window closes into a
	// model builder, swaps the model into every shedder once warm, and —
	// with Drift set — retrains when the input distribution shifts.
	LifecycleConfig = runtime.LifecycleConfig
	// LifecycleStats is a snapshot of the lifecycle counters.
	LifecycleStats = runtime.LifecycleStats
	// ModelLifecycle is the supervisor handle: stats, the currently
	// published model, explicit retrains.
	ModelLifecycle = runtime.Lifecycle
	// FeedbackTap is the sampled window-close observer feeding the
	// online trainer and drift detector; pipelines with a Lifecycle
	// install taps automatically.
	FeedbackTap = operator.FeedbackTap
)

// NewUntrainedModel returns a model with no training evidence — the
// starting point for shedders governed by the online lifecycle; it
// refuses to shed until a trained model is swapped in.
func NewUntrainedModel(types, n, binSize int) (*Model, error) {
	return core.NewUntrainedModel(types, n, binSize)
}

// NewFeedbackTap builds a standalone sampled window-close tap over a
// model builder (every <= 1 observes all closes); install its
// OnWindowClose as an operator hook to accumulate training statistics
// outside a managed pipeline.
func NewFeedbackTap(builder *ModelBuilder, every int) (*FeedbackTap, error) {
	return operator.NewFeedbackTap(builder, every)
}

// Model persistence.

// SaveModel writes a trained model to w (versioned binary format with a
// CRC32 trailer) so deployments can train offline and ship models.
func SaveModel(m *Model, w io.Writer) error { return m.Save(w) }

// LoadModel reads a model written by SaveModel, verifying the checksum.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModel(r) }

// Window-parallel matching.
type (
	// ParallelExecutor matches closed windows on a worker pool,
	// emitting complex events in window-close order.
	ParallelExecutor = parallel.Executor
	// ParallelConfig assembles an executor.
	ParallelConfig = parallel.Config
)

// NewParallelExecutor builds a window-parallel matching pool.
func NewParallelExecutor(cfg ParallelConfig) (*ParallelExecutor, error) {
	return parallel.New(cfg)
}

// ParallelReplay matches a full stream on a worker pool.
func ParallelReplay(events []Event, spec WindowSpec, cfg ParallelConfig) ([]ComplexEvent, error) {
	return parallel.Replay(events, spec, cfg)
}

// Query language.
type (
	// QueryEnv binds type and attribute names for textual queries.
	QueryEnv = tesla.Env
)

// ParseQuery compiles a Tesla-style textual query (see docs/tesla.md for
// the grammar) into an executable Query.
func ParseQuery(src string, env QueryEnv) (Query, error) { return tesla.Parse(src, env) }

// ParseQueries compiles a multi-query source — a sequence of `define`
// blocks, the file format of `espice-live -queries` — into one Query per
// block.
func ParseQueries(src string, env QueryEnv) ([]Query, error) { return tesla.ParseMulti(src, env) }

// Multi-query engine.
type (
	// Engine is the multi-query deployment layer: one ingress stream
	// fans out to N registered queries behind per-query type filters,
	// with a global shedding budget coordinating all per-query shedders.
	Engine = engine.Engine
	// EngineConfig assembles an engine.
	EngineConfig = engine.Config
	// EngineQueryConfig registers one query with an engine.
	EngineQueryConfig = engine.QueryConfig
	// EngineQuery is a registered query handle (output channel, stats,
	// admission filter).
	EngineQuery = engine.Query
	// EngineStats is the merged engine counter snapshot.
	EngineStats = engine.Stats
	// EngineQueryStats is one query's slice of the engine statistics.
	EngineQueryStats = engine.QueryStats
	// EngineTenantQuota is one tenant's engine-side policy: the ingress
	// rate it is entitled to and its utility weight in the tenant-first
	// budget split (EngineConfig.Tenants, Engine.SetTenantQuota).
	EngineTenantQuota = engine.TenantQuota
	// EngineTenantStats is one tenant's slice of the engine statistics:
	// submitted events, smoothed ingress rate vs quota, current drop
	// share, and the rolled-up counters of its scoped queries.
	EngineTenantStats = engine.TenantStats
)

// NewEngine builds a multi-query engine with no queries registered yet.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// Drift detection (statistical retraining trigger, Section 3.6).
type (
	// DriftDetector raises a retraining flag when the input
	// distribution shifts away from the trained model.
	DriftDetector = core.DriftDetector
	// DriftConfig tunes the detector.
	DriftConfig = core.DriftConfig
)

// NewDriftDetector builds a drift detector over a trained model.
func NewDriftDetector(m *Model, cfg DriftConfig) (*DriftDetector, error) {
	return core.NewDriftDetector(m, cfg)
}

// Controllers wiring detectors to shedders.
type (
	// ESPICEController drives a core shedder from detector decisions.
	ESPICEController = harness.ESPICEController
	// BLController drives the BL baseline.
	BLController = harness.BLController
	// RandomController drives the random shedder.
	RandomController = harness.RandomController
)

// Networked ingestion (internal/transport): the TCP wire boundary in
// front of a Pipeline or Engine. See docs/wire.md for the frame format,
// the credit protocol and the backpressure semantics.
type (
	// IngestServer accepts binary-framed or NDJSON event streams over
	// TCP and feeds them into an IngestSink under per-connection credit
	// windows, so overload is resolved by the load shedder rather than
	// by unbounded buffering.
	IngestServer = transport.Server
	// IngestServerConfig assembles an ingest server.
	IngestServerConfig = transport.ServerConfig
	// IngestServerStats is a snapshot of server counters.
	IngestServerStats = transport.ServerStats
	// IngestSink absorbs ingested event batches; Pipeline and Engine
	// both satisfy it.
	IngestSink = transport.Sink
	// IngestClient is the batching, reconnecting, credit-aware producer
	// for the binary framing.
	IngestClient = transport.Client
	// IngestClientConfig assembles an ingest client.
	IngestClientConfig = transport.ClientConfig
	// IngestClientStats is the client's ledger: events sent and
	// acknowledged, flushes, redials and cumulative credit-wait time.
	IngestClientStats = transport.ClientStats
	// WireEncoder serializes event batches into the binary framing.
	WireEncoder = transport.Encoder
	// WireDecoder parses binary event frames with recycled scratch
	// (allocation-free in steady state; see the Retain field for the
	// hand-off mode).
	WireDecoder = transport.Decoder
	// IngestTenantAuth is an authenticator's verdict on a presented
	// token: the tenant's identity and its wire-side quota
	// (IngestServerConfig.Authenticate enables multi-tenant admission).
	IngestTenantAuth = transport.TenantAuth
	// IngestTenantQuota is a tenant's wire-side entitlement: aggregate
	// credit window across its connections, sustained ingress rate and
	// token-bucket burst depth.
	IngestTenantQuota = transport.TenantQuota
	// IngestTenantStats is one tenant's slice of the server counters
	// (events, throttled batches and cumulative throttle wait, rejected
	// connections, carved credit).
	IngestTenantStats = transport.TenantStats
	// IngestTenantSink is the tenant-aware sink: a server whose sink
	// also satisfies it submits each batch under the tenant that sent
	// it. Engine qualifies (tenant-scoped queries and quota-aware
	// shedding); a plain IngestSink still works untagged.
	IngestTenantSink = transport.TenantSink
)

// NewIngestServer builds a TCP ingest server around a sink.
func NewIngestServer(cfg IngestServerConfig) (*IngestServer, error) {
	return transport.NewServer(cfg)
}

// DialIngest connects an ingest client to an espice-serve address.
func DialIngest(cfg IngestClientConfig) (*IngestClient, error) {
	return transport.Dial(cfg)
}

// Durable ingestion (internal/wal): the optional write-ahead segment
// log behind `espice-serve -wal`, which upgrades the wire transport
// from at-most-once to effectively-once delivery. See docs/wal.md for
// the on-disk format and recovery semantics, and the delivery-semantics
// section of docs/wire.md for the session protocol.
type (
	// WAL is a write-ahead segment log: acked event batches are
	// appended to recycled fixed-size segments with fsync-coalesced
	// group commit and replayed after a crash.
	WAL = wal.Log
	// WALConfig assembles a write-ahead log.
	WALConfig = wal.Config
	// WALStats is a snapshot of the log counters.
	WALStats = wal.Stats
	// WALRecord is one replayed record (sequence, session, batch
	// sequence, payload).
	WALRecord = wal.Record
	// WALRecovery summarizes a completed replay.
	WALRecovery = wal.Recovery
	// IngestJournal is the durability hook of IngestServerConfig:
	// batches are journaled and committed through it before they are
	// submitted or acknowledged. A WAL satisfies the append/commit
	// shape; espice-serve adapts one to this interface.
	IngestJournal = transport.Journal
	// IngestSessionState seeds a durable session's dedup watermark
	// (applied batches, accepted events) after recovery.
	IngestSessionState = transport.SessionState
)

// DefaultWALSegmentSize is the default segment capacity in bytes.
const DefaultWALSegmentSize = wal.DefaultSegmentSize

// OpenWAL opens (or creates) a write-ahead log directory. Recover must
// run before the first Append.
func OpenWAL(cfg WALConfig) (*WAL, error) { return wal.Open(cfg) }
