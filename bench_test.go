package espice

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/queries"
	"repro/internal/window"
)

// benchScale keeps the per-iteration cost of the figure benchmarks
// moderate; run cmd/espice-bench for the full-scale reproduction.
func benchScale() harness.Scale {
	s := harness.QuickScale()
	s.NYSEMinutes = 40
	s.RTLSSeconds = 900
	s.Q1Sizes = []int{2, 6}
	s.Q2Sizes = []int{10, 80}
	s.Q34Windows = []int{300, 2000}
	s.BinSizes = []int{1, 16, 64}
	s.Rates = []float64{1.2}
	return s
}

// reportFigure exposes the figure's series means as benchmark metrics so
// `go test -bench` output doubles as a quality summary. Metric units must
// not contain whitespace, so labels are sanitized.
func reportFigure(b *testing.B, fig *harness.Figure, unit string) {
	b.Helper()
	clean := strings.NewReplacer(" ", "", ":", "_")
	for _, ser := range fig.Series {
		if len(ser.Y) == 0 {
			continue
		}
		sum := 0.0
		for _, y := range ser.Y {
			sum += y
		}
		b.ReportMetric(sum/float64(len(ser.Y)), clean.Replace(ser.Label)+"_"+unit)
	}
}

func benchFigure(b *testing.B, fn func(harness.Scale) (*harness.Figure, error), unit string) {
	b.Helper()
	s := benchScale()
	for i := 0; i < b.N; i++ {
		fig, err := fn(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, unit)
		}
	}
}

// --- One benchmark per table/figure of the paper's evaluation ----------

func BenchmarkTable1RunningExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunningExample(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5aQ1FirstFN(b *testing.B) { benchFigure(b, harness.Fig5a, "FN%") }
func BenchmarkFig5bQ1LastFN(b *testing.B)  { benchFigure(b, harness.Fig5b, "FN%") }
func BenchmarkFig5cQ2FirstFN(b *testing.B) { benchFigure(b, harness.Fig5c, "FN%") }
func BenchmarkFig5dQ2LastFN(b *testing.B)  { benchFigure(b, harness.Fig5d, "FN%") }
func BenchmarkFig5eQ3FN(b *testing.B)      { benchFigure(b, harness.Fig5e, "FN%") }
func BenchmarkFig5fQ4FN(b *testing.B)      { benchFigure(b, harness.Fig5f, "FN%") }
func BenchmarkFig6aQ1FP(b *testing.B)      { benchFigure(b, harness.Fig6a, "FP%") }
func BenchmarkFig6bQ3FP(b *testing.B)      { benchFigure(b, harness.Fig6b, "FP%") }

func BenchmarkFig7Latency(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		fig, err := harness.Fig7(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Report the peak per-second mean latency: must stay < 1s.
			maxLat := 0.0
			for _, ser := range fig.Series {
				for _, y := range ser.Y {
					if y > maxLat {
						maxLat = y
					}
				}
			}
			b.ReportMetric(maxLat, "peak_latency_s")
		}
	}
}

func BenchmarkFig8aVariableWindowQ1(b *testing.B) { benchFigure(b, harness.Fig8a, "FN%") }
func BenchmarkFig8bVariableWindowQ2(b *testing.B) { benchFigure(b, harness.Fig8b, "FN%") }
func BenchmarkFig9aBinSizeQ1(b *testing.B)        { benchFigure(b, harness.Fig9a, "FN%") }
func BenchmarkFig9bBinSizeQ2(b *testing.B)        { benchFigure(b, harness.Fig9b, "FN%") }

func BenchmarkFig10ShedderOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.MeasureShedderOverhead([]int{2000, 4000, 16000}, 500, 1000)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, "overhead%")
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ------

func BenchmarkAblationPartitioning(b *testing.B) { benchFigure(b, harness.AblationPartitioning, "val") }
func BenchmarkAblationShedders(b *testing.B)     { benchFigure(b, harness.AblationShedders, "FN%") }

// BenchmarkAblationExactVsAtLeast contrasts exact-amount dropping with
// the literal Algorithm 2 (drop at least x): the at-least variant drops
// every event at or below the threshold.
func BenchmarkAblationExactVsAtLeast(b *testing.B) {
	m := syntheticModel(b, 500, 2000)
	part := core.ComputePartitioning(2000, 1000, 0.8)
	for _, exact := range []bool{true, false} {
		name := "atleast"
		if exact {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			s, err := core.NewShedder(m)
			if err != nil {
				b.Fatal(err)
			}
			s.SetExactAmount(exact)
			if err := s.Configure(part, 50); err != nil {
				b.Fatal(err)
			}
			drops := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.Drop(event.Type(i%500), i%2000, 2000) {
					drops++
				}
			}
			b.ReportMetric(float64(drops)/float64(b.N)*100, "drop%")
		})
	}
}

// markerType opens and closes the tumbling predicate windows of the
// skewed shard benchmarks; the seq(A;B) matcher ignores it.
const markerType = Type(2)

func isMarker(e Event) bool { return e.Type == markerType }

// skewWindowSpec is the windowing policy of the skewed shard
// benchmarks: marker events split the stream into tumbling predicate
// windows, so one window's size is exactly the events between its
// markers — the only policy that gives individual windows skewed sizes
// (with sliding windows every event joins every open window and all
// windows see the same load). Length is a far-away backstop.
func skewWindowSpec() WindowSpec {
	return WindowSpec{Mode: ModeTime, Length: 1 << 40, Open: isMarker, Close: isMarker}
}

// hotWindowEvents builds the hot-window skew stream: every 20th window
// is dense (640 events vs 8), putting ~81% of the stream into 5% of the
// windows. Hot window ordinals are ≡ 0 (mod 20), so under a static
// windowID%N placement every hot window of a 2-, 4- or 8-shard
// deployment lands on the same shard — the degenerate case load-aware
// placement and work stealing exist to fix.
func hotWindowEvents(n int) []Event {
	const (
		cold     = 8
		hot      = 640
		hotEvery = 20
	)
	events := make([]Event, 0, n)
	for w := 0; len(events) < n; w++ {
		fill := cold
		if w%hotEvery == 0 {
			fill = hot
		}
		events = append(events, Event{Type: markerType})
		for i := 0; i < fill && len(events) < n; i++ {
			events = append(events, Event{Type: Type(i % 2)})
		}
	}
	events = events[:n]
	for i := range events {
		events[i].Seq = uint64(i)
		events[i].TS = Time(i)
	}
	return events
}

// zipfWindowEvents draws each window's size from a seeded Zipf
// distribution (s=1.3, v=2, max 512): many tiny windows, a heavy tail
// of large ones — the smooth-skew companion to hotWindowEvents.
func zipfWindowEvents(n int) []Event {
	z := rand.NewZipf(rand.New(rand.NewSource(42)), 1.3, 2, 512)
	events := make([]Event, 0, n)
	for len(events) < n {
		fill := int(z.Uint64()) + 2
		events = append(events, Event{Type: markerType})
		for i := 0; i < fill && len(events) < n; i++ {
			events = append(events, Event{Type: Type(i % 2)})
		}
	}
	events = events[:n]
	for i := range events {
		events[i].Seq = uint64(i)
		events[i].TS = Time(i)
	}
	return events
}

// BenchmarkPipelineShards measures the live pipeline in three regimes.
// The delayed variants grow the shard count under
// ProcessingDelay-induced load: each kept membership costs a fixed
// sleep, so the serial pipeline is capped at 1/delay memberships per
// second while N shards overlap N sleeps — throughput should scale
// near-linearly from 1 to 4 shards. The nodelay variants run the raw
// data path (overlapping count windows, 8 memberships per event) at
// full speed, so ns/op and allocs/op reflect the real per-event cost of
// routing, shedding, buffering and matching. The skew variants route
// hot-window and Zipf-sized tumbling windows under the same delay: they
// measure how well load-aware placement and work stealing keep skewed
// streams scaling (cmd/benchjson compare gates kept_ev/s monotonicity
// per variant when the machine has >= 4 procs).
func BenchmarkPipelineShards(b *testing.B) {
	const delay = 50 * time.Microsecond
	run := func(b *testing.B, shards int, d time.Duration, spec WindowSpec, events []Event) {
		p, err := NewPipeline(PipelineConfig{
			Operator: OperatorConfig{
				Window:   spec,
				Patterns: []*CompiledPattern{mustCompileSeqAB(b)},
			},
			Shards:          shards,
			ProcessingDelay: d,
		})
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- p.Run(context.Background()) }()
		go func() {
			for range p.Out() {
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		p.SubmitBatch(events)
		p.CloseInput()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		kept := p.Stats().Operator.MembershipsKept
		b.ReportMetric(float64(kept)/b.Elapsed().Seconds(), "kept_ev/s")
	}
	uniformEvents := func(n int) []Event {
		events := make([]Event, n)
		for i := range events {
			events[i] = Event{Seq: uint64(i), TS: Time(i), Type: Type(i % 2)}
		}
		return events
	}
	// The shard sweep covers {1, 2, 4, 8} plus GOMAXPROCS when it is not
	// already in the list: the scaling contract is "shards=N monotonically
	// beats shards=1 up to GOMAXPROCS", so the machine's own core count is
	// always a measured point (cmd/benchjson compare gates regressions on
	// machines with >= 4 procs and warns elsewhere).
	shardCounts := []int{1, 2, 4, 8}
	if gmp := runtime.GOMAXPROCS(0); gmp != 1 && gmp != 2 && gmp != 4 && gmp != 8 {
		shardCounts = append(shardCounts, gmp)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			run(b, shards, delay, WindowSpec{Mode: ModeCount, Count: 10, Slide: 10}, uniformEvents(b.N))
		})
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("nodelay/shards=%d", shards), func(b *testing.B) {
			run(b, shards, 0, WindowSpec{Mode: ModeCount, Count: 128, Slide: 16}, uniformEvents(b.N))
		})
	}
	for _, sk := range []struct {
		name string
		gen  func(int) []Event
	}{{"hotwindow", hotWindowEvents}, {"zipf", zipfWindowEvents}} {
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("skew/%s/shards=%d", sk.name, shards), func(b *testing.B) {
				run(b, shards, delay, skewWindowSpec(), sk.gen(b.N))
			})
		}
	}
}

// BenchmarkOperatorProcess measures the serial operator data path alone —
// no channels, no goroutines: route into 8 overlapping count windows,
// shed (in the shed variant), buffer, and match seq(A;B) on every window
// close. This is the per-event cost the load shedder's O(1) budget is
// measured against; allocs/op should be ~0 in steady state.
func BenchmarkOperatorProcess(b *testing.B) {
	mkEvents := func() []Event {
		events := make([]Event, 4096)
		for i := range events {
			events[i] = Event{Seq: uint64(i), TS: Time(i), Type: Type(i % 4)}
		}
		return events
	}
	b.Run("noshed", func(b *testing.B) {
		op, err := NewOperator(OperatorConfig{
			Window:   WindowSpec{Mode: ModeCount, Count: 128, Slide: 16},
			Patterns: []*CompiledPattern{mustCompileSeqAB(b)},
		})
		if err != nil {
			b.Fatal(err)
		}
		events := mkEvents()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op.Process(events[i%len(events)])
		}
	})
	b.Run("shed", func(b *testing.B) {
		m := syntheticModel(b, 4, 128)
		s, err := core.NewShedder(m)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Configure(core.ComputePartitioning(128, 64, 0.8), 4); err != nil {
			b.Fatal(err)
		}
		op, err := NewOperator(OperatorConfig{
			Window:   WindowSpec{Mode: ModeCount, Count: 128, Slide: 16},
			Patterns: []*CompiledPattern{mustCompileSeqAB(b)},
			Shedder:  s,
		})
		if err != nil {
			b.Fatal(err)
		}
		events := mkEvents()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op.Process(events[i%len(events)])
		}
	})
}

func mustCompileSeqAB(tb testing.TB) *CompiledPattern {
	tb.Helper()
	p, err := CompilePattern(Pattern{
		Name: "seq(A;B)",
		Steps: []PatternStep{
			{Types: []Type{Type(0)}},
			{Types: []Type{Type(1)}},
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// --- Micro benchmarks on the hot path -----------------------------------

func syntheticModel(tb testing.TB, types, n int) *core.Model {
	tb.Helper()
	ut, err := core.NewUtilityTable(types, n, 1)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	shares := make([][]float64, types)
	for t := 0; t < types; t++ {
		shares[t] = make([]float64, ut.Bins())
		for p := range shares[t] {
			ut.Set(event.Type(t), p, rng.Intn(101))
			shares[t][p] = rng.Float64()
		}
	}
	m, err := core.NewModelFromTable(ut, shares)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkShedderDecision measures the O(1) applyLS decision — the
// number the paper's Figure 10 divides by the event processing time.
func BenchmarkShedderDecision(b *testing.B) {
	m := syntheticModel(b, 500, 16000)
	s, err := core.NewShedder(m)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Configure(core.ComputePartitioning(16000, 1000, 0.8), 10); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	typs := make([]event.Type, 1024)
	poss := make([]int, 1024)
	for i := range typs {
		typs[i] = event.Type(rng.Intn(500))
		poss[i] = rng.Intn(16000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Drop(typs[i%1024], poss[i%1024], 16000)
	}
}

func BenchmarkCDTBuild(b *testing.B) {
	m := syntheticModel(b, 500, 2000)
	part := core.ComputePartitioning(2000, 1000, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildCDT(m, part); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThresholdLookup(b *testing.B) {
	m := syntheticModel(b, 500, 2000)
	cdt, err := core.BuildCDT(m, core.ComputePartitioning(2000, 1000, 0.8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdt.Threshold(i%cdt.Rho(), float64(i%200))
	}
}

func BenchmarkModelBuild(b *testing.B) {
	const types, n = 100, 1000
	mb, err := core.NewModelBuilder(core.ModelBuilderConfig{Types: types, N: n})
	if err != nil {
		b.Fatal(err)
	}
	w := &window.Window{ExpectedSize: n}
	rng := rand.New(rand.NewSource(2))
	for p := 0; p < n; p++ {
		w.Add(event.Event{Seq: uint64(p), Type: event.Type(rng.Intn(types))}, p)
		w.Arrivals++
	}
	matched := w.Kept[:20]
	for i := 0; i < 50; i++ {
		mb.ObserveWindow(w, matched)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mb.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUtilityLookupScaled(b *testing.B) {
	m := syntheticModel(b, 500, 2000)
	ut := m.UT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Window size differs from N: exercises the scaling path.
		ut.Utility(event.Type(i%500), i%1500, 1500)
	}
}

// benchPairQuery builds a seq(A;B) query over the type pair (2i, 2i+1)
// of an 8-type stream, with a tumbling time window — the multi-query
// fan-out workload.
func benchPairQuery(tb testing.TB, i int) queries.Query {
	tb.Helper()
	a, b := event.Type(2*i), event.Type(2*i+1)
	p, err := CompilePattern(Pattern{
		Name: fmt.Sprintf("pair%d", i),
		Steps: []PatternStep{
			{Types: []Type{a}},
			{Types: []Type{b}},
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return queries.Query{
		Name:     fmt.Sprintf("pair%d", i),
		Window:   WindowSpec{Mode: ModeTime, Length: 64 * Millisecond, SlideTime: 64 * Millisecond, SizeHint: 16},
		Patterns: []*CompiledPattern{p},
		NumTypes: 8,
	}
}

// BenchmarkEngineFanout contrasts the multi-query engine against the
// naive deployment for 3 queries over one 8-type stream: naive runs 3
// standalone pipelines that each re-filter the full stream (every event
// joins every pipeline's windows and pays the per-kept-membership cost),
// while the engine's type filters deliver each query only the quarter of
// the stream its patterns reference. The useful_kept_ev/s metric counts
// only pattern-relevant kept memberships, so it measures productive
// throughput; expect the engine at ~4x (>= the 2x acceptance bar).
func BenchmarkEngineFanout(b *testing.B) {
	const (
		nQueries = 3
		delay    = 50 * time.Microsecond
	)
	makeEvents := func(n int) []Event {
		events := make([]Event, n)
		for i := range events {
			events[i] = Event{Seq: uint64(i), TS: Time(i) * Millisecond, Type: Type(i % 8)}
		}
		return events
	}
	usefulCount := func(events []Event) float64 {
		// Events whose type some query's pattern references: types 0..5.
		n := 0
		for _, ev := range events {
			if ev.Type < 2*nQueries {
				n++
			}
		}
		return float64(n)
	}

	b.Run("standalone-refilter", func(b *testing.B) {
		events := makeEvents(b.N)
		pipes := make([]*Pipeline, nQueries)
		for i := range pipes {
			q := benchPairQuery(b, i)
			p, err := NewPipeline(PipelineConfig{
				Operator:        OperatorConfig{Window: q.Window, Patterns: q.Patterns},
				ProcessingDelay: delay,
			})
			if err != nil {
				b.Fatal(err)
			}
			pipes[i] = p
		}
		b.ResetTimer()
		done := make(chan error, nQueries)
		for _, p := range pipes {
			go func(p *Pipeline) { done <- p.Run(context.Background()) }(p)
			go func(p *Pipeline) {
				for range p.Out() {
				}
			}(p)
			go func(p *Pipeline) { p.SubmitBatch(events); p.CloseInput() }(p)
		}
		for range pipes {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(usefulCount(events)/b.Elapsed().Seconds(), "useful_kept_ev/s")
	})

	runEngine := func(b *testing.B, perQueryDelay time.Duration) {
		events := makeEvents(b.N)
		eng, err := engine.New(engine.Config{})
		if err != nil {
			b.Fatal(err)
		}
		handles := make([]*engine.Query, nQueries)
		for i := range handles {
			h, err := eng.Register(engine.QueryConfig{
				Query:           benchPairQuery(b, i),
				ProcessingDelay: perQueryDelay,
			})
			if err != nil {
				b.Fatal(err)
			}
			handles[i] = h
		}
		b.ReportAllocs()
		b.ResetTimer()
		done := make(chan error, 1)
		go func() { done <- eng.Run(context.Background()) }()
		for _, h := range handles {
			go func(h *engine.Query) {
				for range h.Out() {
				}
			}(h)
		}
		eng.SubmitBatch(events)
		eng.CloseInput()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		useful := 0.0
		for _, h := range handles {
			useful += float64(h.Stats().Delivered)
		}
		b.ReportMetric(useful/b.Elapsed().Seconds(), "useful_kept_ev/s")
	}

	b.Run("engine", func(b *testing.B) { runEngine(b, delay) })
	// nodelay runs the same fan-out at full speed: ns/op and allocs/op
	// reflect the real ingress + fan-out + per-query data path cost.
	b.Run("nodelay/engine", func(b *testing.B) { runEngine(b, 0) })
}

// BenchmarkCodecDecode measures the wire-to-event hot path of the
// ingest server: decoding one 256-event binary frame into the decoder's
// recycled scratch. In steady state this must be allocation-free (the
// zero-alloc gate lives in internal/transport); the retain variant pays
// exactly one Vals-slab allocation per frame for hand-off to a
// pipeline.
func BenchmarkCodecDecode(b *testing.B) {
	mkPayload := func() []byte {
		events := make([]Event, 256)
		for i := range events {
			events[i] = Event{
				Seq:  uint64(i),
				Type: Type(i % 16),
				TS:   Time(i) * Millisecond,
				Kind: Kind(i % 4),
				Vals: []float64{float64(i), 1.5, -3},
			}
		}
		var enc WireEncoder
		return enc.AppendEvents(nil, events)
	}
	b.Run("scratch", func(b *testing.B) {
		payload := mkPayload()
		var dec WireDecoder
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dec.DecodeEvents(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("retain", func(b *testing.B) {
		payload := mkPayload()
		dec := WireDecoder{Retain: true}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dec.DecodeEvents(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALAppend measures the durable-ingest journal. "stage" is
// the pure append path — header encode, CRC32C, staging-buffer copy —
// which must stay allocation-free (the zero-alloc gate in
// internal/wal's tests pins the same property); the periodic group
// commit that drains the staging buffer runs off the clock. "commit"
// measures a full journaled batch: one 256-event append plus its
// fsync-coalesced Commit, i.e. the per-batch durability cost a single
// uncontended producer pays.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	open := func(b *testing.B) *WAL {
		w, err := OpenWAL(WALConfig{Dir: b.TempDir(), SegmentSize: 64 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Recover(func(WALRecord) error { return nil }); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { w.Close() })
		return w
	}
	b.Run("stage", func(b *testing.B) {
		w := open(b)
		// Warm BOTH staging buffers to steady-state size: commit swaps
		// the double-buffered staging pair, so it takes two full
		// fill+commit cycles before appends stop growing either one.
		var last uint64
		for cycle := 0; cycle < 2; cycle++ {
			for i := 0; i < 4096; i++ {
				var err error
				if last, err = w.Append(1, last+1, payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Commit(last); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seq, err := w.Append(1, uint64(i+1), payload)
			if err != nil {
				b.Fatal(err)
			}
			if i%4096 == 4095 {
				b.StopTimer()
				if err := w.Commit(seq); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			last = seq
		}
		b.StopTimer()
		if err := w.Commit(last); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(payload)))
	})
	b.Run("commit", func(b *testing.B) {
		w := open(b)
		batch := make([]byte, 256*32) // ~a 256-event batch of 32B events
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seq, err := w.Append(1, uint64(i+1), batch)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Commit(seq); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(batch)))
	})
}
