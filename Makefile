GO ?= go

# Hot-path benchmark selection and budget for `make bench`. CI overrides
# BENCHTIME to keep runs short; the committed BENCH_results.json is
# produced at the default 1s.
BENCH ?= BenchmarkOperatorProcess|BenchmarkShedderDecision|BenchmarkPipelineShards/nodelay|BenchmarkEngineFanout/nodelay|BenchmarkCodecDecode|BenchmarkWALAppend
BENCHTIME ?= 1s
BENCHLABEL ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo local)

# Per-target budget for the fuzz smoke (CI runs this; long local fuzzing
# goes through `go test -fuzz` directly).
FUZZTIME ?= 10s

.PHONY: build test bench bench-skew bench-figures fmt vet doccheck fuzz-smoke loadtest killtest chaostest fairtest

build:
	$(GO) build ./...

test: vet doccheck
	$(GO) test -race ./...

# Run the hot-path benchmark suite with -benchmem and record the results
# in BENCH_results.json (appended as one labeled run), so every PR can
# regression-check against the recorded trajectory. The bench output goes
# through a temp file so a failing/panicking benchmark fails the target
# instead of being masked by the pipe. Before appending, the run is
# compared against the committed trajectory (>15% ns/op or any zero-alloc
# gate regression); the `-` prefix keeps the report non-blocking.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime=$(BENCHTIME) -benchmem . > bench.out \
		|| { cat bench.out; rm -f bench.out; exit 1; }
	cat bench.out
	-$(GO) run ./cmd/benchjson compare -baseline BENCH_results.json < bench.out
	$(GO) run ./cmd/benchjson -out BENCH_results.json -label $(BENCHLABEL) < bench.out
	rm -f bench.out

# Skew scaling gate: run the shard-scaling benchmarks (uniform delayed
# plus skewed hot-window/Zipf variants) with -benchmem, compare against
# the trajectory and append the run. Unlike `make bench`, the compare is
# blocking: benchjson hard-fails when kept_ev/s is non-monotone in the
# shard count or falls below shards=1 — but only when both the fresh run
# and the recorded trajectory were measured with GOMAXPROCS >= 4 (on
# smaller machines, which cannot measure real parallel speedup, the
# check degrades to advisory WARN lines and the target still passes).
# The nodelay variants are excluded on purpose: their ns/op is
# startup-dominated at short CI budgets, so they stay under the
# non-blocking `make bench` compare; the delayed/skew variants here are
# sleep-dominated and stable at any budget.
bench-skew:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineShards/(shards=|skew)' -benchtime=$(BENCHTIME) -benchmem . > bench-skew.out \
		|| { cat bench-skew.out; rm -f bench-skew.out; exit 1; }
	cat bench-skew.out
	$(GO) run ./cmd/benchjson compare -baseline BENCH_results.json < bench-skew.out \
		|| { rm -f bench-skew.out; exit 1; }
	$(GO) run ./cmd/benchjson -out BENCH_results.json -label $(BENCHLABEL) < bench-skew.out
	rm -f bench-skew.out

# Full figure-reproduction sweep (slow; one iteration each).
bench-figures:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Short fuzzing pass over the wire codec, the frame parser and the WAL
# replay scanner (go test allows one -fuzz pattern per invocation,
# hence separate runs). New crashers land in the packages'
# testdata/fuzz directories; commit them.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzCodecRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz '^FuzzServerFrame$$' -fuzztime=$(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime=$(FUZZTIME) ./internal/wal

# Drive the networked ingest path end to end (in-process loopback
# server) and leave a machine-readable latency summary next to
# BENCH_results.json; CI uploads it as an artifact.
loadtest:
	$(GO) run ./cmd/espice-loadgen -selftest -events 200000 -conns 4 -rate 0 \
		-seconds 240 -json loadgen_summary.json

# Crash-recovery soak: SIGKILL a real espice-serve subprocess
# mid-stream, restart it on the same -wal directory, and audit the
# effectively-once delivery ledger — KILL_ITERS consecutive times. The
# soak skips itself under the race detector; this target runs it in a
# plain build (CI gives it a dedicated non-race step).
KILL_ITERS ?= 20
killtest:
	ESPICE_KILL_ITERS=$(KILL_ITERS) $(GO) test ./cmd/espice-serve -run '^TestServeKillResilience$$' -count=1 -v

# Chaos soak: one engine-mode durable server under simultaneous
# connection resets, a panicking query and an injected fsync failure.
# All faults are seed-driven, so the run is reproducible. Two passes:
# the full soak in a plain build, then a shortened run under the race
# detector (the fault windows are timing-sensitive, so -short keeps the
# race pass inside its budget).
chaostest:
	$(GO) test ./internal/chaos -count=1
	$(GO) test ./cmd/espice-serve -run '^TestChaosSoak$$' -count=1 -v
	$(GO) test ./cmd/espice-serve -run '^TestChaosSoak$$' -race -short -count=1

# Multi-tenant fairness soak: a compliant tenant next to a tenant
# flooding far above its quota — the compliant stream must stay
# byte-identical to its solo run, its p99 inside the regression bound,
# and the flood's overage throttled at the transport and shed by the
# engine budget. Two passes like chaostest: the full soak in a plain
# build, then a shortened run under the race detector (race overhead
# stretches the burst window, so -short keeps it inside its budget).
fairtest:
	$(GO) test ./cmd/espice-serve -run '^TestTenantFairnessSoak$$' -count=1 -v
	$(GO) test ./cmd/espice-serve -run '^TestTenant' -race -short -count=1

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Docs gate: every exported identifier of the public surface (facade +
# engine) must carry a doc comment.
doccheck:
	$(GO) run ./cmd/doccheck
