GO ?= go

.PHONY: build test bench fmt vet

build:
	$(GO) build ./...

test: vet
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
