GO ?= go

.PHONY: build test bench fmt vet doccheck

build:
	$(GO) build ./...

test: vet doccheck
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Docs gate: every exported identifier of the public surface (facade +
# engine) must carry a doc comment.
doccheck:
	$(GO) run ./cmd/doccheck
