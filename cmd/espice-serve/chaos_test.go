// The chaos soak: one engine-mode durable deployment under every fault
// class at once — connection resets mid-stream (chaos.Proxy), a query
// whose window-close hook panics (engine quarantine), and an injected
// fsync failure on the WAL (degrade-to-lossy with probe restore). The
// process must survive, the healthy query keeps its stream, no acked
// event is lost or duplicated at the sink, and the whole episode is
// visible in the stats frame.
package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/window"
)

// soakLedger fingerprints submitted events the same way the server's
// delivery ledger does (order-independent count/sum/xor).
type soakLedger struct {
	count, sum, xor uint64
}

func (l *soakLedger) add(events []event.Event) {
	for i := range events {
		l.count++
		l.sum += events[i].Seq
		l.xor ^= events[i].Seq
	}
}

func (l *soakLedger) merge(o soakLedger) {
	l.count += o.count
	l.sum += o.sum
	l.xor ^= o.xor
}

func TestChaosSoak(t *testing.T) {
	harness.VerifyNoLeaks(t)
	qfile := filepath.Join(t.TempDir(), "queries.tesla")
	src := `
define MarkA
from seq(STR_A where kind = possession; any 2 distinct of DEF_B00, DEF_B01, DEF_B02, DEF_B03 where kind = defend)
within 15s
open STR_A
anchored

define MarkB
from seq(STR_B where kind = possession; any 2 distinct of DEF_A00, DEF_A01, DEF_A02, DEF_A03 where kind = defend)
within 15s
open STR_B
anchored
`
	if err := os.WriteFile(qfile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := harness.NewFaultFS(wal.OSFS{})
	opts := serveOpts{
		seconds:         120,
		seed:            1,
		shedder:         "none",
		queries:         qfile,
		credit:          512,
		latEvry:         64,
		walDir:          t.TempDir(),
		walPolicy:       "degrade-lossy",
		walFS:           fs,
		walProbe:        100 * time.Millisecond,
		shutdownTimeout: 5 * time.Second,
		queryHooks: map[string]operator.WindowCloseHook{
			// MarkB is the sick query: its first window close panics, so
			// the engine must quarantine it mid-soak.
			"MarkB": func(w *window.Window, matched []window.Entry) {
				panic("chaos: injected query fault")
			},
		},
	}
	app, addr, out, stop := startStoppable(t, opts)

	// Arm the storage fault before any traffic: the third fsync fails,
	// flipping the degrade-lossy WAL into its lossy episode early in the
	// soak; the 100ms probe restores it while producers are still going.
	fs.FailSyncAt(fs.Syncs() + 3)

	// All wire traffic rides through the fault-injecting proxy:
	// deterministic resets every 8–64 KiB and fragmented writes.
	proxy, err := chaos.NewProxy(addr, chaos.Config{
		Seed:          1,
		MinResetBytes: 4 << 10,
		MaxResetBytes: 16 << 10,
		MaxChunk:      512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	_, events, _ := regen(t, opts)
	total := len(events)
	if testing.Short() {
		total = len(events) / 2
	}
	const chunk = 128
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		union   soakLedger
		firstEr error
	)
	for ci := 0; ci < 3; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			var led soakLedger
			fail := func(err error) {
				mu.Lock()
				defer mu.Unlock()
				if firstEr == nil {
					firstEr = err
				}
			}
			c, err := transport.Dial(transport.ClientConfig{
				Addr:        proxy.Addr(),
				BatchEvents: 32,
				Session:     uint64(101 + ci),
				Reconnect:   true,
				MaxRedials:  200,
				MaxBackoff:  20 * time.Millisecond,
			})
			if err != nil {
				fail(err)
				return
			}
			// Stripe the stream across producers (every 3rd event), so
			// the merged arrival order stays near time order; pace the
			// chunks so the soak spans the whole degraded episode.
			slice := make([]event.Event, 0, total/3+1)
			for i := ci; i < total; i += 3 {
				slice = append(slice, events[i])
			}
			for off := 0; off < len(slice); off += chunk {
				end := off + chunk
				if end > len(slice) {
					end = len(slice)
				}
				if err := c.SubmitBatch(slice[off:end]); err != nil {
					fail(err)
					return
				}
				led.add(slice[off:end])
				time.Sleep(8 * time.Millisecond)
			}
			cs, err := c.Close()
			if err != nil {
				fail(err)
				return
			}
			if cs.Sent != led.count || cs.Accepted != led.count {
				t.Errorf("producer %d ledger %+v, want Sent == Accepted == %d", ci, cs, led.count)
			}
			mu.Lock()
			union.merge(led)
			mu.Unlock()
		}(ci)
	}

	// Mid-soak, both faults must be observed: the WAL degrades (and the
	// transport acks at least one batch lossily) and MarkB is
	// quarantined. Both happen while the producers are still pushing.
	waitFor(t, 30*time.Second, func() bool {
		st := app.stats()
		return st.Server.LostDurability > 0 && st.Chaos.Quarantines > 0
	})
	wg.Wait()
	if firstEr != nil {
		t.Fatalf("producer failed: %v\noutput:\n%s", firstEr, out.String())
	}

	// The WAL healed: the probe restored durability without a restart.
	waitFor(t, 10*time.Second, func() bool {
		ws := app.wal.log.Stats()
		return !ws.Degraded && ws.Restores >= 1
	})

	// Chaos actually happened on the wire, and the producers rode it out
	// with redials, not losses.
	if ps := proxy.Stats(); ps.Resets == 0 {
		t.Errorf("no connection resets injected (%+v); the soak is vacuous", ps)
	}

	// No acked event lost or duplicated: the server's delivery ledger
	// fingerprints exactly the union of what the producers submitted —
	// through resets, retransmits, dedup and the lossy episode.
	waitFor(t, 10*time.Second, func() bool { return app.ledger.stats().Count == union.count })
	if ls := app.ledger.stats(); ls.Sum != union.sum || ls.Xor != union.xor {
		t.Fatalf("delivery ledger %+v diverges from the submitted union %+v", ls, union)
	}

	// The whole episode is visible in the stats frame: read the JSON
	// document over a fresh (direct) connection like any client would.
	direct, err := transport.Dial(transport.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := direct.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Close(); err != nil {
		t.Fatal(err)
	}
	var st serveStats
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatalf("stats document: %v\n%s", err, doc)
	}
	if st.Chaos.Quarantines == 0 {
		t.Errorf("stats frame shows no quarantines: %+v", st.Chaos)
	}
	if st.Chaos.DegradedSeconds <= 0 {
		t.Errorf("stats frame shows no degraded time: %+v", st.Chaos)
	}
	if st.Server.Degraded {
		t.Errorf("server still degraded after the probe restore: %+v", st.Server)
	}
	if st.WAL == nil || st.WAL.Degradations < 1 || st.WAL.Restores < 1 {
		t.Errorf("WAL stats do not show the degrade/restore round trip: %+v", st.WAL)
	}
	// The healthy query kept its stream while its sibling was marked
	// quarantined.
	var markA, markB bool
	for _, q := range st.Queries {
		switch q.Name {
		case "MarkA":
			markA = q.Delivered > 0 && !q.Quarantined
		case "MarkB":
			markB = q.Quarantined
		}
	}
	if !markA {
		t.Errorf("healthy query MarkA delivered nothing (or was quarantined): %+v", st.Queries)
	}
	if !markB {
		t.Errorf("MarkB not marked quarantined in the stats frame: %+v", st.Queries)
	}

	// Bounded clean shutdown, with the chaos proxy still up.
	if err := stop(); err != nil {
		t.Fatalf("drain: %v\noutput:\n%s", err, out.String())
	}
}
