package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/transport"
)

// TestServeKillResilience is the crash soak for the effectively-once
// contract: a real espice-serve process is SIGKILLed mid-stream while
// two durable producers are feeding it, restarted on the same -wal
// directory and address, and the producers finish through their redial
// path. The restarted server's delivery ledger must fingerprint the
// union of both producers' streams exactly — no acked event lost to
// the kill, none delivered twice past the dedup watermark — and
// recovery must complete within a hard bound.
//
// Iterations default to 2; ESPICE_KILL_ITERS raises the count (the
// acceptance soak runs 20). The test drives subprocesses, so it is
// skipped in -short mode and under the race detector (CI runs it in a
// dedicated non-race step).
func TestServeKillResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill soak; skipped in -short")
	}
	if raceEnabled {
		t.Skip("subprocess kill soak runs without the race detector")
	}
	bin := buildServeBinary(t)
	iters := 2
	if s := os.Getenv("ESPICE_KILL_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("ESPICE_KILL_ITERS=%q", s)
		}
		iters = n
	}
	for i := 0; i < iters; i++ {
		t.Run(fmt.Sprintf("iter%02d", i), func(t *testing.T) { killOnce(t, bin) })
	}
}

// killDataSeconds is the dataset both sides derive the registry from.
const killDataSeconds = 60

func killOnce(t *testing.T, bin string) {
	dir := t.TempDir()
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))

	p1 := startServeProc(t, bin, addr, dir)
	waitListening(t, p1, 30*time.Second)

	// Two producers with disjoint event sequence ranges and distinct
	// durable sessions, paced so the kill lands mid-stream.
	_, base, err := datasets.GenerateRTLS(datasets.RTLSConfig{DurationSec: killDataSeconds, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const (
		clients   = 2
		perClient = 6000
		batch     = 64
	)
	streams := make([][]event.Event, clients)
	var wantCount, wantSum, wantXor uint64
	for ci := range streams {
		evs := make([]event.Event, perClient)
		seq := uint64(ci+1) << 40
		for i := range evs {
			evs[i] = base[i%len(base)]
			evs[i].Seq = seq
			wantCount++
			wantSum += seq
			wantXor ^= seq
			seq++
		}
		streams[ci] = evs
	}

	var submitted atomic.Int64
	type result struct {
		stats transport.ClientStats
		err   error
	}
	results := make(chan result, clients)
	for ci := 0; ci < clients; ci++ {
		go func(ci int) {
			var r result
			defer func() { results <- r }()
			c, err := transport.Dial(transport.ClientConfig{
				Addr:        addr,
				BatchEvents: batch,
				Session:     uint64(101 + ci),
				Reconnect:   true,
				MaxRedials:  60,
			})
			if err != nil {
				r.err = err
				return
			}
			evs := streams[ci]
			for off := 0; off < len(evs); off += batch {
				end := min(off+batch, len(evs))
				if err := c.SubmitBatch(evs[off:end]); err != nil {
					r.err = err
					c.Close()
					return
				}
				submitted.Add(int64(end - off))
				time.Sleep(500 * time.Microsecond)
			}
			r.stats, r.err = c.Close()
		}(ci)
	}

	// SIGKILL once ~40% of the load is in flight.
	deadline := time.Now().Add(30 * time.Second)
	for submitted.Load() < int64(wantCount*4/10) {
		if time.Now().After(deadline) {
			t.Fatalf("producers stalled at %d/%d events\nserver output:\n%s",
				submitted.Load(), wantCount, p1.out.String())
		}
		time.Sleep(time.Millisecond)
	}
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait()

	// Restart on the same directory and address; recovery must be
	// bounded — the producers' redial budget depends on it.
	restart := time.Now()
	p2 := startServeProc(t, bin, addr, dir)
	waitListening(t, p2, 30*time.Second)
	if d := time.Since(restart); d > 30*time.Second {
		t.Fatalf("recovery took %s", d)
	}

	for ci := 0; ci < clients; ci++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("producer failed: %v\nserver output:\n%s%s", r.err, p1.out.String(), p2.out.String())
		}
		if r.stats.Sent != perClient || r.stats.Accepted != perClient {
			t.Fatalf("producer ledger %+v, want Sent == Accepted == %d", r.stats, perClient)
		}
	}

	// Audit the restarted server's delivery ledger against the union of
	// the producers' streams: equal fingerprints mean every acked event
	// was delivered to the operator exactly once in the post-kill
	// lifetime (journaled survivors via replay, the rest live).
	sc, err := transport.Dial(transport.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sc.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	sc.Close()
	var st serveStats
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatalf("stats document: %v\n%s", err, doc)
	}
	if st.Ledger == nil || st.WAL == nil {
		t.Fatalf("stats document misses wal/ledger sections: %s", doc)
	}
	if st.Ledger.Count != wantCount || st.Ledger.Sum != wantSum || st.Ledger.Xor != wantXor {
		t.Fatalf("delivery ledger %+v, want count %d sum %d xor %d (acked events lost or duplicated)\nserver output:\n%s",
			*st.Ledger, wantCount, wantSum, wantXor, p2.out.String())
	}

	// Graceful shutdown of the survivor must drain and exit cleanly.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown: %v\noutput:\n%s", err, p2.out.String())
	}
}

// buildServeBinary compiles espice-serve once per test run.
func buildServeBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "espice-serve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// serveProc is a running espice-serve subprocess with its captured
// stderr and a signal for the listening line.
type serveProc struct {
	cmd       *exec.Cmd
	out       *syncBuf
	listening chan struct{}
}

func startServeProc(t *testing.T, bin, addr, dir string) *serveProc {
	t.Helper()
	p := &serveProc{
		cmd: exec.Command(bin,
			"-addr", addr,
			"-wal", dir,
			"-seconds", strconv.Itoa(killDataSeconds),
			"-seed", "1",
			"-n", "3",
			"-shedder", "none",
			"-report", "0",
		),
		out:       &syncBuf{},
		listening: make(chan struct{}),
	}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, 4<<10)
		seen := false
		for {
			n, err := stderr.Read(buf)
			if n > 0 {
				p.out.Write(buf[:n])
				if !seen && strings.Contains(p.out.String(), "listening on") {
					seen = true
					close(p.listening)
				}
			}
			if err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	return p
}

func waitListening(t *testing.T, p *serveProc, timeout time.Duration) {
	t.Helper()
	select {
	case <-p.listening:
	case <-time.After(timeout):
		t.Fatalf("server did not reach listening state in %s\noutput:\n%s", timeout, p.out.String())
	}
}

// freePort reserves an ephemeral port and releases it for the
// subprocess to bind; the window between close and bind is small enough
// for a test.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}
