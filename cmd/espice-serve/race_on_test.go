//go:build race

package main

// raceEnabled: see race_off_test.go.
const raceEnabled = true
