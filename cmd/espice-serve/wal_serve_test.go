package main

import (
	"context"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/transport"
	"repro/internal/wal"
)

// syncBuf is a race-safe strings.Builder: run writes it from its own
// goroutine while the test reads it.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// walOpts is the single-query deployment used by the WAL serve tests:
// shedding off so every ingested event is deterministic work.
func walOpts(dir string) serveOpts {
	return serveOpts{
		seconds: 120,
		seed:    1,
		n:       3,
		winSec:  15,
		shards:  1,
		shedder: "none",
		credit:  2048,
		latEvry: 16,
		walDir:  dir,
	}
}

// startStoppable is startApp with an explicit stop: the test decides
// when the clean drain happens instead of deferring it to cleanup. It
// returns only once the server is past WAL recovery and listening.
func startStoppable(t *testing.T, opts serveOpts) (*serveApp, string, *syncBuf, func() error) {
	t.Helper()
	return startStoppableAt(t, opts, "127.0.0.1:0")
}

// startStoppableAt is startStoppable on a fixed address, for restart
// tests where a client must redial the same endpoint across server
// lifetimes.
func startStoppableAt(t *testing.T, opts serveOpts, addr string) (*serveApp, string, *syncBuf, func() error) {
	t.Helper()
	app, err := buildServe(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuf{}
	runDone := make(chan error, 1)
	go func() { runDone <- app.run(ctx, ln, out) }()
	stopped := false
	stop := func() error {
		stopped = true
		cancel()
		return <-runDone
	}
	t.Cleanup(func() {
		if !stopped {
			if err := stop(); err != nil {
				t.Errorf("run: %v\noutput:\n%s", err, out.String())
			}
		}
	})
	// Recovery happens strictly before the listening line is printed.
	waitFor(t, 10*time.Second, func() bool { return strings.Contains(out.String(), "listening on") })
	return app, ln.Addr().String(), out, stop
}

// TestServeWALRestartReplay simulates the aftermath of a crash: a WAL
// holding two journaled-but-unreleased durable batches. The restarted
// server must replay them through the sink before accepting
// connections, seed the session's dedup watermark, and absorb the
// producer's retransmit without delivering anything twice.
func TestServeWALRestartReplay(t *testing.T) {
	harness.VerifyNoLeaks(t)
	dir := t.TempDir()
	opts := walOpts(dir)
	_, events, _ := regen(t, opts)
	in := events[:96] // batches 1..3 of 32 under BatchEvents: 32

	// Fabricate the crashed server's log: batches 1 and 2 of session 11
	// journaled and committed, nothing released — exactly the state left
	// behind when the process died after acking them.
	wlog, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wlog.Recover(func(wal.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var enc transport.Encoder
	var last uint64
	for b := 0; b < 2; b++ {
		payload := enc.AppendEvents(nil, in[b*32:(b+1)*32])
		last, err = wlog.Append(11, uint64(b+1), payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := wlog.Commit(last); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	app, addr, out, _ := startStoppable(t, opts)
	if app.walRecovery.Records != 2 {
		t.Fatalf("recovered %d records, want 2\noutput:\n%s", app.walRecovery.Records, out.String())
	}
	if got := app.ledger.stats().Count; got != 64 {
		t.Fatalf("ledger count after replay = %d, want 64", got)
	}
	if !strings.Contains(out.String(), "wal recovery: 2 records") {
		t.Errorf("missing recovery line in output:\n%s", out.String())
	}

	// The producer, which never saw its acks for batches 1-2 confirmed
	// as durable across the restart, reconnects and retransmits from the
	// beginning; batches 1-2 must be dedup-acked, batch 3 delivered.
	c, err := transport.Dial(transport.ClientConfig{Addr: addr, BatchEvents: 32, Session: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatch(in); err != nil {
		t.Fatal(err)
	}
	cs, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Sent != 96 || cs.Accepted != 96 {
		t.Fatalf("client ledger %+v, want Sent == Accepted == 96", cs)
	}
	if st := app.srv.Stats(); st.DedupBatches != 2 {
		t.Fatalf("dedup batches = %d, want 2 (stats %+v)", st.DedupBatches, st)
	}

	// Exactly once end to end: 64 replayed + 32 new, no duplicates. The
	// ledger fingerprint must match the input exactly.
	var wantSum, wantXor uint64
	for i := range in {
		wantSum += in[i].Seq
		wantXor ^= in[i].Seq
	}
	waitFor(t, 5*time.Second, func() bool { return app.ledger.stats().Count == 96 })
	if ls := app.ledger.stats(); ls.Sum != wantSum || ls.Xor != wantXor {
		t.Fatalf("ledger %+v does not fingerprint the input (want sum %d xor %d)", ls, wantSum, wantXor)
	}
	waitFor(t, 5*time.Second, func() bool { return app.stats().Processed == 96 })
}

// TestServeWALCleanShutdownReleases pins the clean-drain contract: a
// graceful stop releases the whole log, so the next start replays
// nothing and the recycled segments are reused.
func TestServeWALCleanShutdownReleases(t *testing.T) {
	harness.VerifyNoLeaks(t)
	dir := t.TempDir()
	opts := walOpts(dir)
	_, events, _ := regen(t, opts)

	app, addr, _, stop := startStoppable(t, opts)
	c, err := transport.Dial(transport.ClientConfig{Addr: addr, BatchEvents: 64, Session: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatch(events[:256]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if ws := app.wal.log.Stats(); ws.ReleasedSeq != ws.LastSeq || ws.LastSeq == 0 {
		t.Fatalf("clean drain left unreleased records: %+v", ws)
	}

	app2, _, out2, stop2 := startStoppable(t, opts)
	if app2.walRecovery.Records != 0 {
		t.Fatalf("clean restart replayed %d records\noutput:\n%s", app2.walRecovery.Records, out2.String())
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}

// TestServeWALCleanRestartResume covers the durable producer that
// outlives a clean server restart: the clean drain released the whole
// log (previous test), so no session watermark survives, and the
// producer's next batch arrives on a fresh session far above batch 1.
// The restarted server must adopt the sequence and resume — without
// replaying or double-delivering anything.
func TestServeWALCleanRestartResume(t *testing.T) {
	harness.VerifyNoLeaks(t)
	dir := t.TempDir()
	opts := walOpts(dir)
	_, events, _ := regen(t, opts)
	addr := net.JoinHostPort("127.0.0.1", strconv.Itoa(freePort(t)))

	_, _, _, stop := startStoppableAt(t, opts, addr)
	c, err := transport.Dial(transport.ClientConfig{
		Addr: addr, BatchEvents: 32, Session: 9, Reconnect: true, MaxRedials: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatch(events[:64]); err != nil { // batches 1 and 2
		t.Fatal(err)
	}
	// Reading the stats document forces a round trip, draining the
	// pending acks so both batches leave the client ledger before the
	// restart — the resumed session must start with batch 3.
	if _, err := c.ServerStats(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	app2, _, out2, stop2 := startStoppableAt(t, opts, addr)
	if app2.walRecovery.Records != 0 {
		t.Fatalf("clean restart replayed %d records\noutput:\n%s", app2.walRecovery.Records, out2.String())
	}
	// The next batch rides the client's redial into the restarted
	// server, which must adopt the fresh session at batch 3.
	if err := c.SubmitBatch(events[64:96]); err != nil {
		t.Fatal(err)
	}
	cs, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Sent != 96 || cs.Accepted != 96 {
		t.Fatalf("client ledger %+v, want Sent == Accepted == 96 across the restart", cs)
	}
	if cs.Redials != 1 {
		t.Fatalf("client stats %+v, want exactly 1 redial", cs)
	}
	if s := app2.srv.SessionStates()[9]; s.Applied != 3 {
		t.Fatalf("restarted server session state %+v, want Applied 3", s)
	}
	// Only batch 3's events were delivered in the new lifetime.
	if got := app2.ledger.stats().Count; got != 32 {
		t.Fatalf("restart-lifetime ledger count = %d, want 32", got)
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalTrackerDropSessions pins the expiry-to-release interplay:
// a quiet session's newest record blocks the release prefix until the
// session is dropped, after which the same policy reclaims it.
func TestJournalTrackerDropSessions(t *testing.T) {
	wlog, err := wal.Open(wal.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	if _, err := wlog.Recover(nil); err != nil {
		t.Fatal(err)
	}
	j := newJournalTracker(wlog)
	// Record 1 belongs to session 5; records 2 and 3 are non-durable.
	// The timestamps put records 1 and 2 far below the horizon and make
	// record 3 the newest.
	sec := func(s int64) event.Time { return event.Time(s * 1_000_000) }
	for i, r := range []struct {
		session uint64
		ts      event.Time
	}{{5, sec(1)}, {0, sec(2)}, {0, sec(1000)}} {
		if _, err := j.Append(r.session, 1, 8, r.ts, []byte("x")); err != nil {
			t.Fatalf("append %d: %v", i+1, err)
		}
	}

	// Session 5 pins record 1, and the release prefix stops before it.
	j.release(time.Second)
	if rs := wlog.Stats().ReleasedSeq; rs != 0 {
		t.Fatalf("released through %d with the session pin in place, want 0", rs)
	}
	// Dropping the expired session unpins it; the next sweep reclaims
	// everything below the horizon.
	j.dropSessions([]uint64{5})
	j.release(time.Second)
	if rs := wlog.Stats().ReleasedSeq; rs != 2 {
		t.Fatalf("released through %d after dropping the session, want 2", rs)
	}
}
