// Write-ahead-log wiring: the journal adapter between the transport
// server and internal/wal, the replay-before-serve recovery path, the
// delivery ledger the kill-resilience harness audits, and the
// timestamp-horizon release policy that recycles fully-absorbed
// segments.
package main

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/transport"
	"repro/internal/wal"
)

// walRec is the release-policy metadata of one journaled record.
type walRec struct {
	seq   uint64
	maxTS event.Time
}

// journalTracker adapts *wal.Log to transport.Journal and tracks the
// metadata the release policy needs: each live record's max event
// timestamp (order of seq) and, per durable session, the sequence of
// its newest record — which must never be released while the session
// may reconnect, because recovery rebuilds the dedup watermark from it.
type journalTracker struct {
	log *wal.Log

	mu      sync.Mutex
	recs    []walRec          // un-released records, ascending seq
	sessTop map[uint64]uint64 // session id -> seq of its newest record
	maxTS   event.Time        // newest event timestamp seen
}

func newJournalTracker(log *wal.Log) *journalTracker {
	return &journalTracker{log: log, sessTop: make(map[uint64]uint64)}
}

// Append implements transport.Journal. The tracker mutex spans the log
// append so the metadata list stays seq-ordered.
func (j *journalTracker) Append(session, batchSeq uint64, count int, maxTS event.Time, payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	seq, err := j.log.Append(session, batchSeq, payload)
	if err != nil {
		return 0, mapDegraded(err)
	}
	j.observeLocked(seq, session, maxTS)
	return seq, nil
}

// Commit implements transport.Journal.
func (j *journalTracker) Commit(seq uint64) error { return mapDegraded(j.log.Commit(seq)) }

// Degraded implements transport.JournalHealth, so the server can close
// a degraded episode as soon as the probe restores the log — even with
// no traffic arriving to observe a healthy journal result.
func (j *journalTracker) Degraded() bool { return j.log.Stats().Degraded }

// mapDegraded translates the WAL's degraded state into the transport's
// journal-degraded sentinel, which makes the server accept the batch
// lossily with FlagDegraded acks instead of dropping the connection.
// Every other error keeps its fail-stop meaning.
func mapDegraded(err error) error {
	if err != nil && errors.Is(err, wal.ErrDegraded) {
		return fmt.Errorf("%w: %v", transport.ErrJournalDegraded, err)
	}
	return err
}

// observeReplayed feeds recovery-replayed records into the release
// bookkeeping: they are live (un-released) exactly like fresh appends.
func (j *journalTracker) observeReplayed(r wal.Record, maxTS event.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.observeLocked(r.Seq, r.Session, maxTS)
}

func (j *journalTracker) observeLocked(seq, session uint64, maxTS event.Time) {
	j.recs = append(j.recs, walRec{seq: seq, maxTS: maxTS})
	if session != 0 {
		j.sessTop[session] = seq
	}
	if maxTS > j.maxTS {
		j.maxTS = maxTS
	}
}

// release recycles the longest prefix of records that (a) carry only
// events with timestamps at or below the horizon — old enough that
// their windows have closed — and (b) precede every session's newest
// record, so a restart can still seed each session's dedup watermark.
// slack is the operator-chosen retention (the -wal-release flag); zero
// disables releasing entirely.
func (j *journalTracker) release(slack time.Duration) {
	if slack <= 0 {
		return
	}
	j.mu.Lock()
	horizon := j.maxTS - event.Time(slack.Microseconds())
	keep := uint64(0) // lowest session-top seq, 0 = none
	for _, top := range j.sessTop {
		if keep == 0 || top < keep {
			keep = top
		}
	}
	var through uint64
	n := 0
	for _, r := range j.recs {
		if r.maxTS > horizon || (keep != 0 && r.seq >= keep) {
			break
		}
		through = r.seq
		n++
	}
	if n > 0 {
		j.recs = append(j.recs[:0], j.recs[n:]...)
	}
	j.mu.Unlock()
	if through > 0 {
		j.log.Release(through)
	}
}

// dropSessions forgets the newest-record pins of expired sessions
// (the ids Server.ExpireSessions returned), letting the next release
// sweep reclaim their segments. The sessions' dedup state is gone with
// them: a producer that returns anyway resumes through the transport's
// fresh-session path.
func (j *journalTracker) dropSessions(ids []uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, id := range ids {
		delete(j.sessTop, id)
	}
}

// releaseAll marks the whole log absorbed; only sound after a full
// drain (server closed, pipeline flushed), where by construction every
// journaled record has been processed and every window closed.
func (j *journalTracker) releaseAll() {
	j.mu.Lock()
	j.recs = j.recs[:0]
	j.mu.Unlock()
	j.log.Release(j.log.LastSeq())
}

// ledgerSink wraps the real sink with a delivery ledger: an order-
// independent fingerprint (count, sum and xor of the event sequence
// numbers) of everything submitted to the operator in this process
// lifetime. The kill-resilience harness compares it against the
// producers' ledgers: a lost acked event shows up as a missing term, a
// duplicate delivery as an extra one.
type ledgerSink struct {
	inner transport.Sink
	count atomic.Uint64
	sum   atomic.Uint64
	xor   atomic.Uint64
}

func (l *ledgerSink) SubmitBatch(events []event.Event) {
	l.fingerprint(events)
	l.inner.SubmitBatch(events)
}

// SubmitTenantBatch fingerprints identically and forwards the tenant
// identity, so a WAL deployment keeps per-tenant scoping and shedding
// (the ledger satisfies transport.TenantSink whenever the inner sink
// does).
func (l *ledgerSink) SubmitTenantBatch(tenant string, events []event.Event) {
	l.fingerprint(events)
	if ts, ok := l.inner.(transport.TenantSink); ok && tenant != "" {
		ts.SubmitTenantBatch(tenant, events)
		return
	}
	l.inner.SubmitBatch(events)
}

// fingerprint folds a batch into the order-independent delivery ledger.
func (l *ledgerSink) fingerprint(events []event.Event) {
	var sum, xor uint64
	for i := range events {
		sum += events[i].Seq
		xor ^= events[i].Seq
	}
	l.count.Add(uint64(len(events)))
	l.sum.Add(sum)
	// Atomic xor-accumulate via CAS; contention is per batch, not per
	// event.
	for {
		old := l.xor.Load()
		if l.xor.CompareAndSwap(old, old^xor) {
			break
		}
	}
}

// ledgerStats is the JSON shape of the delivery ledger.
type ledgerStats struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Xor   uint64 `json:"xor"`
}

func (l *ledgerSink) stats() ledgerStats {
	return ledgerStats{Count: l.count.Load(), Sum: l.sum.Load(), Xor: l.xor.Load()}
}

// serveWALStats is the JSON shape of the WAL section of the stats
// document.
type serveWALStats struct {
	wal.Stats
	RecoveredRecords int   `json:"recovered_records"`
	RecoveredBytes   int   `json:"recovered_bytes"`
	RecoveredTrunc   bool  `json:"recovered_truncated"`
	RecoveryMillis   int64 `json:"recovery_millis"`
}

// recoverWAL replays every surviving record through the normal sink
// path — before the server accepts connections — and seeds the
// transport's per-session dedup watermarks from what it replayed.
func (app *serveApp) recoverWAL(w io.Writer) error {
	start := time.Now()
	dec := transport.Decoder{Retain: true, MaxVals: 0}
	if app.registry != nil {
		dec.MaxTypes = app.registry.Len()
	}
	acceptedBySess := make(map[uint64]uint64)
	rec, err := app.wal.log.Recover(func(r wal.Record) error {
		events, derr := dec.DecodeEvents(r.Payload)
		if derr != nil {
			return fmt.Errorf("espice-serve: wal record %d: %w", r.Seq, derr)
		}
		var maxTS event.Time
		for i := range events {
			if events[i].TS > maxTS {
				maxTS = events[i].TS
			}
		}
		if len(events) > 0 {
			app.sink.SubmitBatch(events)
		}
		if r.Session != 0 {
			acceptedBySess[r.Session] += uint64(len(events))
		}
		app.wal.observeReplayed(r, maxTS)
		return nil
	})
	if err != nil {
		return err
	}
	states := make(map[uint64]transport.SessionState, len(rec.Sessions))
	for id, applied := range rec.Sessions {
		states[id] = transport.SessionState{Applied: applied, Accepted: acceptedBySess[id]}
	}
	app.srv.SeedSessions(states)
	app.walRecovery = rec
	app.walRecoveryTime = time.Since(start)
	fmt.Fprintf(w, "espice-serve: wal recovery: %d records (%d bytes, %d sessions) replayed in %s (truncated=%v)\n",
		rec.Records, rec.Bytes, len(rec.Sessions), app.walRecoveryTime.Round(time.Millisecond), rec.Truncated)
	return nil
}

// walStats assembles the WAL stats section.
func (app *serveApp) walStats() *serveWALStats {
	if app.wal == nil {
		return nil
	}
	return &serveWALStats{
		Stats:            app.wal.log.Stats(),
		RecoveredRecords: app.walRecovery.Records,
		RecoveredBytes:   app.walRecovery.Bytes,
		RecoveredTrunc:   app.walRecovery.Truncated,
		RecoveryMillis:   app.walRecoveryTime.Milliseconds(),
	}
}
