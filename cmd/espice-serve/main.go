// Command espice-serve is the networked ingest deployment of the live
// eSPICE pipeline: it listens on TCP, accepts primitive events in the
// binary framing or as NDJSON lines (see docs/wire.md), and feeds them
// into a sharded runtime.Pipeline — or, with -queries, into the
// multi-query engine — with load shedding driven by the overload
// detector. Backpressure reaches clients through per-connection credit
// windows, so an overloaded server sheds by utility instead of
// buffering without bound.
//
// The event-type registry is derived deterministically from the dataset
// flags (-seconds, -seed), exactly as cmd/espice-loadgen derives it, so
// a loadgen started with the same flags speaks the same type ids.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/tesla"
	"repro/internal/transport"
	"repro/internal/wal"
)

// serveOpts bundles the command-line parameters so the whole server is
// constructable from tests.
type serveOpts struct {
	addr    string
	seconds int
	seed    int64
	n       int
	winSec  int
	shards  int
	shedder string
	bound   time.Duration
	f       float64
	delay   time.Duration
	queries string
	tenants string
	credit  int
	latEvry int
	report  time.Duration

	walDir     string
	walSegment int
	walRelease time.Duration
	sessExpiry time.Duration
	walPolicy  string

	shutdownTimeout time.Duration

	// Test-only seams (no flags): inject the WAL filesystem and probe
	// cadence (chaos soak drives fsync faults through harness.FaultFS),
	// and per-query window-close hooks in engine mode.
	walFS      wal.FS
	walProbe   time.Duration
	queryHooks map[string]operator.WindowCloseHook
}

func main() {
	log.SetFlags(0)
	opts := serveOpts{}
	flag.StringVar(&opts.addr, "addr", ":7071", "listen address")
	flag.IntVar(&opts.seconds, "seconds", 900, "seconds of synthetic RTLS data for registry + training")
	flag.Int64Var(&opts.seed, "seed", 1, "generator seed (must match the load generator)")
	flag.IntVar(&opts.n, "n", 4, "Q1 pattern size")
	flag.IntVar(&opts.winSec, "window-sec", 15, "Q1 window length in seconds")
	flag.IntVar(&opts.shards, "shards", 1, "parallel operator instances")
	flag.StringVar(&opts.shedder, "shedder", "espice", "shedder: espice or none")
	flag.DurationVar(&opts.bound, "bound", 500*time.Millisecond, "latency bound LB")
	flag.Float64Var(&opts.f, "f", 0.7, "shedding trigger fraction f")
	flag.DurationVar(&opts.delay, "delay", 0, "artificial processing cost per kept membership")
	flag.StringVar(&opts.queries, "queries", "",
		"multi-query mode: file of Tesla-text define blocks served side by side on the engine")
	flag.StringVar(&opts.tenants, "tenants", "",
		"multi-tenant mode: JSON file of tenant specs (name/token/window/rate/burst/weight/queries; see docs/wire.md) enabling the tenant handshake, per-tenant quotas and tenant-aware shedding")
	flag.IntVar(&opts.credit, "credit", transport.DefaultWindow, "per-connection credit window in events")
	flag.IntVar(&opts.latEvry, "latency-sample", 256, "record 1 in N end-to-end latency samples")
	flag.DurationVar(&opts.report, "report", 10*time.Second, "stderr stats interval (0 disables)")
	flag.StringVar(&opts.walDir, "wal", "",
		"write-ahead log directory: journal acked batches and replay them on restart (see docs/wal.md)")
	flag.IntVar(&opts.walSegment, "wal-segment", wal.DefaultSegmentSize, "WAL segment size in bytes")
	flag.DurationVar(&opts.walRelease, "wal-release", 0,
		"recycle WAL segments whose events are older than this (0 keeps everything until clean shutdown; must exceed the window length)")
	flag.DurationVar(&opts.sessExpiry, "session-expiry", 0,
		"drop a durable session's dedup state after this long without a connection, unpinning its WAL records for -wal-release (0 keeps sessions for the server lifetime; see docs/wal.md)")
	flag.StringVar(&opts.walPolicy, "wal-policy", "fail-stop",
		"WAL failure policy: fail-stop (a storage fault poisons the log and drops producers) or degrade-lossy (accept at-most-once with FlagDegraded acks until a probe restores the log; see docs/wal.md)")
	flag.DurationVar(&opts.shutdownTimeout, "shutdown-timeout", 0,
		"bound the connection drain on shutdown: open connections get this long to finish before their deadlines cut them off (0 closes immediately)")
	flag.Parse()

	app, err := buildServe(opts)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := app.run(ctx, ln, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// tenantSpec is one entry of the -tenants JSON file: the tenant's
// identity and token, its transport-level quota (aggregate credit
// window, sustained rate, burst depth), its engine-level budget policy
// (entitled rate doubles as the quota rate; weight shields its queries
// in the budget split), and the names of the queries scoped to it.
type tenantSpec struct {
	Name    string   `json:"name"`
	Token   string   `json:"token"`
	Window  int      `json:"window,omitempty"`
	Rate    float64  `json:"rate,omitempty"`
	Burst   float64  `json:"burst,omitempty"`
	Weight  float64  `json:"weight,omitempty"`
	Queries []string `json:"queries,omitempty"`
}

// loadTenants parses a -tenants file: a JSON array of tenantSpec.
func loadTenants(path string) ([]tenantSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var specs []tenantSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("espice-serve: tenants %s: %w", path, err)
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		if sp.Name == "" || sp.Token == "" {
			return nil, fmt.Errorf("espice-serve: tenants %s: every entry needs a name and a token", path)
		}
		if seen[sp.Name] || seen["tok:"+sp.Token] {
			return nil, fmt.Errorf("espice-serve: tenants %s: duplicate name or token %q", path, sp.Name)
		}
		seen[sp.Name] = true
		seen["tok:"+sp.Token] = true
	}
	return specs, nil
}

// authenticator builds the transport token check from the tenant specs:
// a known token resolves to its tenant and quota, no token resolves to
// the anonymous tenant (plain version-1 connections keep working), and
// an unknown token is rejected.
func authenticator(specs []tenantSpec) func(token []byte) (transport.TenantAuth, error) {
	byToken := make(map[string]transport.TenantAuth, len(specs))
	for _, sp := range specs {
		byToken[sp.Token] = transport.TenantAuth{
			Tenant: sp.Name,
			Quota: transport.TenantQuota{
				Window: sp.Window,
				Rate:   sp.Rate,
				Burst:  sp.Burst,
			},
		}
	}
	return func(token []byte) (transport.TenantAuth, error) {
		if len(token) == 0 {
			return transport.TenantAuth{}, nil // anonymous tenant
		}
		auth, ok := byToken[string(token)]
		if !ok {
			return transport.TenantAuth{}, fmt.Errorf("unknown tenant token")
		}
		return auth, nil
	}
}

// serveApp is a fully assembled ingest deployment: transport server in
// front of either a pipeline or an engine, optionally journaling
// through a write-ahead log.
type serveApp struct {
	opts     serveOpts
	srv      *transport.Server
	registry *event.Registry
	sink     transport.Sink

	// Set when opts.tenants is non-empty.
	tenantSpecs []tenantSpec
	queryTenant map[string]string // query name -> scoping tenant

	// Exactly one of pipe/eng is set.
	pipe    *runtime.Pipeline
	eng     *engine.Engine
	handles []*engine.Query

	// Set when opts.walDir is non-empty.
	wal             *journalTracker
	ledger          *ledgerSink
	walRecovery     wal.Recovery
	walRecoveryTime time.Duration

	complexEvents atomic.Uint64
}

// buildServe assembles the deployment described by opts: generate the
// dataset (registry + training data), train the model(s) when shedding
// is on, and wire pipeline/engine, shedders, detector and transport
// server together.
func buildServe(opts serveOpts) (*serveApp, error) {
	if opts.shards < 1 {
		opts.shards = 1
	}
	if opts.shedder != "espice" && opts.shedder != "none" {
		return nil, fmt.Errorf("espice-serve: shedder must be espice or none, got %q", opts.shedder)
	}
	meta, events, err := datasets.GenerateRTLS(datasets.RTLSConfig{
		DurationSec: opts.seconds, Seed: opts.seed,
	})
	if err != nil {
		return nil, err
	}
	app := &serveApp{opts: opts, queryTenant: map[string]string{}}
	if opts.tenants != "" {
		app.tenantSpecs, err = loadTenants(opts.tenants)
		if err != nil {
			return nil, err
		}
		for _, sp := range app.tenantSpecs {
			for _, qn := range sp.Queries {
				app.queryTenant[qn] = sp.Name
			}
		}
	}
	if opts.queries != "" {
		if err := app.buildEngine(meta, events); err != nil {
			return nil, err
		}
	} else {
		if len(app.queryTenant) > 0 {
			return nil, fmt.Errorf("espice-serve: tenant query scoping requires -queries (engine mode)")
		}
		if err := app.buildPipeline(meta, events); err != nil {
			return nil, err
		}
	}
	var sink transport.Sink = app.pipe
	if app.eng != nil {
		sink = app.eng
	}
	app.registry = meta.Registry
	cfg := transport.ServerConfig{
		Sink:      sink,
		Registry:  meta.Registry,
		Window:    opts.credit,
		StatsJSON: app.statsJSON,
		Logf:      log.Printf,
	}
	if len(app.tenantSpecs) > 0 {
		cfg.Authenticate = authenticator(app.tenantSpecs)
	}
	if opts.walDir != "" {
		// The ledger sits between the transport and the operator so the
		// kill-resilience harness can audit exactly what this process
		// lifetime delivered (replayed + live).
		app.ledger = &ledgerSink{inner: sink}
		sink = app.ledger
		cfg.Sink = sink
		policy := wal.FailStop
		if opts.walPolicy != "" {
			policy, err = wal.ParseFailurePolicy(opts.walPolicy)
			if err != nil {
				return nil, fmt.Errorf("espice-serve: %w", err)
			}
		}
		wlog, err := wal.Open(wal.Config{
			Dir:           opts.walDir,
			FS:            opts.walFS,
			SegmentSize:   opts.walSegment,
			Logf:          log.Printf,
			FailurePolicy: policy,
			ProbeInterval: opts.walProbe,
		})
		if err != nil {
			return nil, err
		}
		app.wal = newJournalTracker(wlog)
		cfg.Journal = app.wal
	}
	app.sink = sink
	srv, err := transport.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	app.srv = srv
	return app, nil
}

// buildPipeline assembles the single-query (Q1) deployment.
func (app *serveApp) buildPipeline(meta *datasets.RTLSMeta, events []event.Event) error {
	opts := app.opts
	query, err := queries.Q1(meta, opts.n, pattern.SelectFirst, opts.winSec)
	if err != nil {
		return err
	}
	cfg := runtime.Config{
		Operator: operator.Config{
			Window:   query.Window,
			Patterns: query.Patterns,
		},
		EstimateRates:      true,
		PollInterval:       5 * time.Millisecond,
		ProcessingDelay:    opts.delay,
		Shards:             opts.shards,
		LatencySampleEvery: opts.latEvry,
	}
	if opts.shedder == "espice" {
		tr, err := harness.Train(query, events, 0, 0)
		if err != nil {
			return err
		}
		shedder, err := core.NewShedder(tr.Model)
		if err != nil {
			return err
		}
		det, err := core.NewOverloadDetector(core.DetectorConfig{
			LatencyBound: event.Time(opts.bound.Microseconds()),
			F:            opts.f,
		})
		if err != nil {
			return err
		}
		cfg.Operator.Shedder = shedder
		cfg.Detector = det
		cfg.Controller = harness.ESPICEController{S: shedder}
	}
	pipe, err := runtime.New(cfg)
	if err != nil {
		return err
	}
	app.pipe = pipe
	return nil
}

// buildEngine assembles the multi-query deployment from a Tesla file:
// each query is trained on its filtered view of the generated stream
// and registered under the engine's global shedding budget.
func (app *serveApp) buildEngine(meta *datasets.RTLSMeta, events []event.Event) error {
	opts := app.opts
	src, err := os.ReadFile(opts.queries)
	if err != nil {
		return err
	}
	qs, err := tesla.ParseMulti(string(src), tesla.Env{Registry: meta.Registry, Schema: meta.Schema})
	if err != nil {
		return err
	}
	ecfg := engine.Config{PollInterval: 5 * time.Millisecond, Logf: log.Printf}
	if opts.shedder == "espice" {
		ecfg.LatencyBound = event.Time(opts.bound.Microseconds())
		ecfg.F = opts.f
	}
	if len(app.tenantSpecs) > 0 {
		ecfg.Tenants = map[string]engine.TenantQuota{}
		for _, sp := range app.tenantSpecs {
			ecfg.Tenants[sp.Name] = engine.TenantQuota{Rate: sp.Rate, Weight: sp.Weight}
		}
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return err
	}
	known := map[string]bool{}
	for _, q := range qs {
		known[q.Name] = true
	}
	for qn := range app.queryTenant {
		if !known[qn] {
			return fmt.Errorf("espice-serve: tenant query %q not defined in %s", qn, opts.queries)
		}
	}
	for _, q := range qs {
		qcfg := engine.QueryConfig{
			Query:           q,
			Shards:          opts.shards,
			ProcessingDelay: opts.delay,
			OnWindowClose:   opts.queryHooks[q.Name],
			Tenant:          app.queryTenant[q.Name],
		}
		if opts.shedder == "espice" {
			ftrain := engine.FilterStream(q, events)
			if len(ftrain) == 0 {
				return fmt.Errorf("espice-serve: query %s: filter leaves no training events", q.Name)
			}
			tr, err := harness.Train(q, ftrain, 0, 0)
			if err != nil {
				return fmt.Errorf("espice-serve: query %s: %w", q.Name, err)
			}
			qcfg.Model = tr.Model
		}
		h, err := eng.Register(qcfg)
		if err != nil {
			return err
		}
		app.handles = append(app.handles, h)
	}
	app.eng = eng
	return nil
}

// run serves on ln until ctx is canceled, then drains in order:
// transport first (no new events), then the stream (pipelines flush
// their windows), then the output collectors. It is the blocking body
// of main, factored for tests.
func (app *serveApp) run(ctx context.Context, ln net.Listener, w io.Writer) error {
	runDone := make(chan error, 1)
	collected := make(chan struct{})
	if app.pipe != nil {
		go func() { runDone <- app.pipe.Run(context.Background()) }()
		go func() {
			defer close(collected)
			for range app.pipe.Out() {
				app.complexEvents.Add(1)
			}
		}()
	} else {
		go func() { runDone <- app.eng.Run(context.Background()) }()
		// One collector per query: a sequential drain would stop reading
		// the other queries' channels, and a query whose OutBuffer fills
		// stalls its pipeline — which backpressures the whole engine and
		// wedges ingestion.
		var wg sync.WaitGroup
		for _, h := range app.handles {
			wg.Add(1)
			go func(h *engine.Query) {
				defer wg.Done()
				for range h.Out() {
					app.complexEvents.Add(1)
				}
			}(h)
		}
		go func() {
			defer close(collected)
			wg.Wait()
		}()
	}

	// Replay the write-ahead log through the normal sink path before a
	// single connection is accepted: recovered batches re-enter the
	// stream, and the per-session dedup watermarks are seeded so
	// reconnecting producers retransmit safely.
	if app.wal != nil {
		if err := app.recoverWAL(w); err != nil {
			ln.Close()
			if app.pipe != nil {
				app.pipe.CloseInput()
			} else {
				app.eng.CloseInput()
			}
			<-runDone
			<-collected
			return fmt.Errorf("espice-serve: wal recovery: %w", err)
		}
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- app.srv.Serve(ln) }()
	fmt.Fprintf(w, "espice-serve: listening on %s (%s)\n", ln.Addr(), app.mode())

	var ticker *time.Ticker
	var tick <-chan time.Time
	if app.opts.report > 0 {
		ticker = time.NewTicker(app.opts.report)
		tick = ticker.C
		defer ticker.Stop()
	}
	// Drain order matters: close the wire, seal the stream, wait for
	// the windows to flush, then read the last output. Both exits — the
	// signal and a fatal listener error — route through it, so the run
	// and collector goroutines never leak.
	drain := func() error {
		// A bounded shutdown lets in-flight connections finish inside the
		// timeout, with every re-armed read/write deadline capped by the
		// drain deadline; zero falls back to immediate close.
		if err := app.srv.Shutdown(app.opts.shutdownTimeout); err != nil {
			fmt.Fprintf(w, "espice-serve: close: %v\n", err)
		}
		if app.pipe != nil {
			app.pipe.CloseInput()
		} else {
			app.eng.CloseInput()
		}
		err := <-runDone
		<-collected
		// A clean drain absorbed every journaled record and closed every
		// window, so the whole log is releasable: a clean restart replays
		// nothing.
		if app.wal != nil {
			app.wal.releaseAll()
			if cerr := app.wal.log.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		doc, _ := json.Marshal(app.stats())
		fmt.Fprintf(w, "espice-serve: final %s\n", doc)
		return err
	}
	for {
		select {
		case <-tick:
			// Expire quiet sessions before releasing, so a newly-unpinned
			// record is reclaimable on the same tick.
			if app.opts.sessExpiry > 0 {
				expired := app.srv.ExpireSessions(app.opts.sessExpiry)
				if app.wal != nil {
					app.wal.dropSessions(expired)
				}
			}
			if app.wal != nil {
				app.wal.release(app.opts.walRelease)
			}
			doc, _ := json.Marshal(app.stats())
			fmt.Fprintf(w, "espice-serve: %s\n", doc)
		case <-ctx.Done():
			return drain()
		case err := <-serveDone:
			if derr := drain(); err == nil {
				err = derr
			}
			return err
		}
	}
}

// mode names the deployment for the startup line.
func (app *serveApp) mode() string {
	switch {
	case app.eng != nil:
		return fmt.Sprintf("engine, %d queries", len(app.handles))
	case app.opts.shards > 1:
		return fmt.Sprintf("sharded pipeline, %d shards", app.opts.shards)
	default:
		return "serial pipeline"
	}
}

// serveStats is the statistics document served to FrameStatsReq clients
// and logged periodically; the JSON field names are the wire contract
// the load generator reports from.
type serveStats struct {
	Server        transport.ServerStats `json:"server"`
	Submitted     uint64                `json:"submitted"`
	Processed     uint64                `json:"processed"`
	QueueLen      int                   `json:"queue_len"`
	PoolMisses    uint64                `json:"pool_misses"`
	Memberships   uint64                `json:"memberships"`
	Kept          uint64                `json:"kept"`
	Shed          uint64                `json:"shed"`
	ComplexEvents uint64                `json:"complex_events"`
	// Steals and Occupancy expose the skew-aware scale-out state:
	// windows adopted via work stealing (summed over shards, and over
	// queries in engine mode) and the partitioner's live placement
	// estimate. ShardBacklog is the per-shard staged-membership backlog
	// of the sharded pipeline (absent in engine and serial modes) —
	// together they show whether a skewed stream is balanced or pinned.
	Steals       uint64                 `json:"steals"`
	Occupancy    int64                  `json:"occupancy"`
	ShardBacklog []int                  `json:"shard_backlog,omitempty"`
	Latency      metrics.LatencySummary `json:"latency"`
	WAL          *serveWALStats         `json:"wal,omitempty"`
	Ledger       *ledgerStats           `json:"ledger,omitempty"`
	Queries      []serveQueryStats      `json:"queries,omitempty"`
	Tenants      []serveTenantStats     `json:"tenants,omitempty"`
	Chaos        chaosStats             `json:"chaos"`
}

// serveTenantStats is the per-tenant slice of the stats document: the
// transport-side admission counters (connections, accepted events,
// throttling, carved credit) joined with the engine-side budget state
// (measured rate vs quota, drop share, kept/shed roll-up) and the
// latency summary of the tenant's scoped queries. The load generator
// lifts these counters into its JSON artifact; the fairness soak reads
// them to prove a noisy tenant's overage was shed while the compliant
// tenant ran untouched.
type serveTenantStats struct {
	Name             string  `json:"name"`
	Conns            int     `json:"conns"`
	ConnsRejected    uint64  `json:"conns_rejected"`
	Events           uint64  `json:"events"`
	ThrottledBatches uint64  `json:"throttled_batches"`
	ThrottleWaitMS   float64 `json:"throttle_wait_ms"`
	CreditCarved     int     `json:"credit_carved"`
	// Engine-side (zero in pipeline mode): ingress measured against the
	// quota rate, the tenant's current drop-rate share and the
	// kept/shed/complex-event roll-up of its scoped queries.
	Submitted     uint64                  `json:"submitted"`
	InputRate     float64                 `json:"input_rate"`
	QuotaRate     float64                 `json:"quota_rate"`
	Weight        float64                 `json:"weight,omitempty"`
	DropShare     float64                 `json:"drop_share"`
	Delivered     uint64                  `json:"delivered"`
	Kept          uint64                  `json:"kept"`
	Shed          uint64                  `json:"shed"`
	ComplexEvents uint64                  `json:"complex_events"`
	Latency       *metrics.LatencySummary `json:"latency,omitempty"`
}

// chaosStats is the fault-containment section of the stats document:
// how much degradation the deployment absorbed while staying up. The
// load generator lifts these counters into its JSON artifact.
type chaosStats struct {
	// Quarantines counts query panics contained by the engine (panics
	// across all quarantined queries, restarts included).
	Quarantines uint64 `json:"quarantines"`
	// DegradedSeconds is the cumulative time the journal spent degraded
	// (acking at-most-once), current episode included.
	DegradedSeconds float64 `json:"degraded_seconds"`
	// EvictedConns counts connections dropped by the idle deadline.
	EvictedConns uint64 `json:"evicted_conns"`
	// PanicsRecovered counts panics absorbed by the per-connection
	// transport guard.
	PanicsRecovered uint64 `json:"panics_recovered"`
}

// serveQueryStats is the per-query slice of the stats document in
// engine mode.
type serveQueryStats struct {
	Name      string `json:"name"`
	Delivered uint64 `json:"delivered"`
	Skipped   uint64 `json:"skipped"`
	Kept      uint64 `json:"kept"`
	Shed      uint64 `json:"shed"`
	// Quarantined marks a query the engine removed after a contained
	// panic (counters frozen at quarantine time; see engine.Stats).
	Quarantined bool `json:"quarantined,omitempty"`
}

// stats assembles the current statistics document.
func (app *serveApp) stats() serveStats {
	st := serveStats{
		Server:        app.srv.Stats(),
		ComplexEvents: app.complexEvents.Load(),
		WAL:           app.walStats(),
	}
	st.Chaos = chaosStats{
		DegradedSeconds: st.Server.DegradedFor.Seconds(),
		EvictedConns:    st.Server.IdleEvictions,
		PanicsRecovered: st.Server.PanicsRecovered,
	}
	quarantined := map[string]bool{}
	if app.eng != nil {
		for _, rec := range app.eng.Stats().Quarantined {
			st.Chaos.Quarantines += rec.Panics
			quarantined[rec.Name] = true
		}
	}
	if app.ledger != nil {
		ls := app.ledger.stats()
		st.Ledger = &ls
	}
	if app.pipe != nil {
		ps := app.pipe.Stats()
		st.Submitted = ps.Submitted
		st.Processed = ps.Processed
		st.QueueLen = ps.QueueLen
		for _, ss := range ps.Shards {
			st.PoolMisses += ss.PoolMisses
			st.Steals += ss.Steals
			st.Occupancy += ss.Occupancy
			st.ShardBacklog = append(st.ShardBacklog, ss.QueueLen)
		}
		st.Memberships = ps.Operator.Memberships
		st.Kept = ps.Operator.MembershipsKept
		st.Shed = ps.Operator.MembershipsShed
		st.Latency = app.pipe.Latency().Summary()
		app.fillTenants(&st, nil)
		return st
	}
	es := app.eng.Stats()
	st.Submitted = es.Submitted
	for _, h := range app.handles {
		qs := h.Stats()
		st.Processed += qs.Pipeline.Processed
		st.QueueLen += qs.Pipeline.QueueLen
		for _, ss := range qs.Pipeline.Shards {
			st.PoolMisses += ss.PoolMisses
			st.Steals += ss.Steals
			st.Occupancy += ss.Occupancy
		}
		st.Memberships += qs.Pipeline.Operator.Memberships
		st.Kept += qs.Pipeline.Operator.MembershipsKept
		st.Shed += qs.Pipeline.Operator.MembershipsShed
		st.Queries = append(st.Queries, serveQueryStats{
			Name:        h.Name(),
			Delivered:   qs.Delivered,
			Skipped:     qs.Skipped,
			Kept:        qs.Pipeline.Operator.MembershipsKept,
			Shed:        qs.Pipeline.Operator.MembershipsShed,
			Quarantined: quarantined[h.Name()],
		})
	}
	app.fillTenants(&st, &es)
	return st
}

// fillTenants joins the transport-side tenant counters with the
// engine-side budget state and per-tenant latency into the stats
// document. Only runs in multi-tenant mode.
func (app *serveApp) fillTenants(st *serveStats, es *engine.Stats) {
	if len(app.tenantSpecs) == 0 {
		return
	}
	byName := map[string]*serveTenantStats{}
	get := func(name string) *serveTenantStats {
		if t, ok := byName[name]; ok {
			return t
		}
		st.Tenants = append(st.Tenants, serveTenantStats{Name: name})
		t := &st.Tenants[len(st.Tenants)-1]
		byName = map[string]*serveTenantStats{} // indices shift on append
		for i := range st.Tenants {
			byName[st.Tenants[i].Name] = &st.Tenants[i]
		}
		return t
	}
	for _, ts := range st.Server.Tenants {
		t := get(ts.Tenant)
		t.Conns = ts.Conns
		t.ConnsRejected = ts.ConnsRejected
		t.Events = ts.Events
		t.ThrottledBatches = ts.ThrottledBatches
		t.ThrottleWaitMS = float64(ts.ThrottleWait.Microseconds()) / 1e3
		t.CreditCarved = ts.CreditCarved
	}
	if es != nil {
		for _, ets := range es.Tenants {
			t := get(ets.Name)
			t.Submitted = ets.Submitted
			t.InputRate = ets.InputRate
			t.QuotaRate = ets.QuotaRate
			t.Weight = ets.Weight
			t.DropShare = ets.DropShare
			t.Delivered = ets.Delivered
			t.Kept = ets.Kept
			t.Shed = ets.Shed
			t.ComplexEvents = ets.ComplexEvents
		}
		// Per-tenant ingress latency: the merged traces of the tenant's
		// scoped queries.
		traces := map[string]*metrics.LatencyTrace{}
		for _, h := range app.handles {
			tn, ok := app.queryTenant[h.Name()]
			if !ok {
				continue
			}
			if traces[tn] == nil {
				traces[tn] = &metrics.LatencyTrace{}
			}
			traces[tn].Merge(h.Pipeline().Latency())
		}
		for tn, tr := range traces {
			if tr.Len() == 0 {
				continue
			}
			sum := tr.Summary()
			get(tn).Latency = &sum
		}
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
}

// statsJSON is the transport.ServerConfig hook.
func (app *serveApp) statsJSON() []byte {
	doc, err := json.Marshal(app.stats())
	if err != nil {
		return []byte("{}")
	}
	return doc
}
