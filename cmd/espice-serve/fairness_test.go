// Fairness soak: two tenants behind one engine-mode deployment, the
// noisy one offering a multiple of its quota while the compliant one
// stays inside its entitlement. The contract under test is the
// tentpole's isolation story end to end — wire handshake, transport
// throttle, tenant-aware budget split — proved by three observables:
// the compliant tenant's complex-event stream is byte-identical to a
// run where it has the server to itself, its utility shedder never
// engages, and the noisy tenant's overage is paid for by the noisy
// tenant (throttled batches at the transport, shed memberships in the
// engine).
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/transport"
)

// fairQueriesSrc gives each tenant one anchored sequence query over its
// own side of the pitch, so the two workloads are symmetric but
// disjoint.
const fairQueriesSrc = `
define MarkA
from seq(STR_A where kind = possession; any 2 distinct of DEF_B00, DEF_B01, DEF_B02, DEF_B03 where kind = defend)
within 15s
open STR_A
anchored

define MarkB
from seq(STR_B where kind = possession; any 2 distinct of DEF_A00, DEF_A01, DEF_A02, DEF_A03 where kind = defend)
within 15s
open STR_B
anchored
`

// fairScale is the soak's load shape; -short (the -race CI step)
// shrinks the event budgets but keeps the rates, so the same quota
// arithmetic holds at both sizes. The quota is provisioned *below* the
// deployment's sustainable capacity (with the configured per-membership
// delay): the isolation contract only holds for entitlements the box
// can actually serve, so the only overload in the soak is the flood's
// burst — which is the noisy tenant's overage and must be shed from it.
type fairScale struct {
	quotaRate float64 // per-tenant entitled rate (transport + engine), ev/s
	burst     float64 // token-bucket depth: how much overage reaches the engine
	tidyRate  float64 // compliant tenant's offered rate, ev/s
	tidyDiv   int     // compliant tenant sends len(dataset)/tidyDiv events
	warmEvs   int     // noisy tenant's compliant warm-up, paced at warmRate
	warmRate  float64 // warm-up rate, below quota (trains the shedder model)
	noisyEvs  int     // noisy tenant's total event budget; the remainder
	// after warmEvs is offered unpaced (the flood)
}

func fairScaleFor(short bool) fairScale {
	s := fairScale{quotaRate: 1200, burst: 8000, tidyRate: 800, tidyDiv: 1,
		warmEvs: 3000, warmRate: 1000, noisyEvs: 16000}
	if short {
		s.tidyDiv = 2
		s.warmEvs = 2000
		s.noisyEvs = 12000
	}
	return s
}

// fairOpts assembles the deployment both runs share: engine mode with
// espice shedding, an artificial per-membership cost so the noisy flood
// actually overloads the box, and the two-tenant spec file.
func fairOpts(t *testing.T, sc fairScale) serveOpts {
	t.Helper()
	dir := t.TempDir()
	qfile := filepath.Join(dir, "queries.tesla")
	if err := os.WriteFile(qfile, []byte(fairQueriesSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	tfile := filepath.Join(dir, "tenants.json")
	spec := fmt.Sprintf(`[
	  {"name": "noisy", "token": "tok-noisy", "rate": %.0f, "burst": %.0f, "weight": 1, "queries": ["MarkA"]},
	  {"name": "tidy",  "token": "tok-tidy",  "rate": %.0f, "burst": %.0f, "weight": 1, "queries": ["MarkB"]}
	]`, sc.quotaRate, sc.burst, sc.quotaRate, sc.burst)
	if err := os.WriteFile(tfile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return serveOpts{
		seconds: 120,
		seed:    1,
		shedder: "espice",
		bound:   400 * time.Millisecond,
		f:       0.7,
		delay:   50 * time.Microsecond,
		queries: qfile,
		tenants: tfile,
		credit:  4096,
		latEvry: 1,
	}
}

// fairResult is what one run yields once fully drained.
type fairResult struct {
	streams map[string][]string         // query name -> ordered complex-event keys
	tenants map[string]serveTenantStats // stats-frame tenant section by name
}

// runFairness brings up a fresh deployment, drives the compliant
// tenant (and, when withNoisy is set, the noisy flood concurrently),
// drains everything and returns the captured output streams plus the
// final per-tenant stats.
func runFairness(t *testing.T, sc fairScale, withNoisy bool) fairResult {
	t.Helper()
	app, err := buildServe(fairOpts(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	// Hand-wired run loop: same drain order as serveApp.run, but the
	// per-query collectors record each complex event's canonical key so
	// the test can compare whole output streams across runs.
	res := fairResult{streams: map[string][]string{}}
	var smu sync.Mutex
	runDone := make(chan error, 1)
	go func() { runDone <- app.eng.Run(context.Background()) }()
	var collect sync.WaitGroup
	for _, h := range app.handles {
		collect.Add(1)
		go func(h *engine.Query) {
			defer collect.Done()
			for ce := range h.Out() {
				smu.Lock()
				res.streams[h.Name()] = append(res.streams[h.Name()], ce.Key())
				smu.Unlock()
			}
		}(h)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- app.srv.Serve(ln) }()

	_, events, _ := regen(t, app.opts)
	var drive sync.WaitGroup
	var dmu sync.Mutex
	var driveErr error
	fail := func(err error) {
		dmu.Lock()
		defer dmu.Unlock()
		if driveErr == nil {
			driveErr = err
		}
	}
	drive.Add(1)
	go func() {
		defer drive.Done()
		if err := driveFair(addr, "tok-tidy", events, len(events)/sc.tidyDiv, 0, 0, sc.tidyRate, 1<<41); err != nil {
			fail(fmt.Errorf("tidy: %w", err))
		}
	}()
	if withNoisy {
		drive.Add(1)
		go func() {
			defer drive.Done()
			// A compliant warm-up first (fills windows, trains the MarkA
			// shedder model), then the rest is offered unpaced: the
			// transport throttle, not the producer, decides how fast the
			// flood lands.
			if err := driveFair(addr, "tok-noisy", events, sc.noisyEvs, sc.warmEvs, sc.warmRate, 0, 1<<40); err != nil {
				fail(fmt.Errorf("noisy: %w", err))
			}
		}()
	}
	drive.Wait()
	if driveErr != nil {
		t.Fatal(driveErr)
	}

	if err := app.srv.Shutdown(0); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	<-serveDone
	app.eng.CloseInput()
	if err := <-runDone; err != nil {
		t.Fatalf("engine run: %v", err)
	}
	collect.Wait()

	res.tenants = map[string]serveTenantStats{}
	for _, ts := range app.stats().Tenants {
		res.tenants[ts.Name] = ts
	}
	return res
}

// driveFair replays the seeded dataset (tiled to total events, sequence
// numbers rewritten from seqBase) over one tenant-authenticated
// connection: the first warm events paced at warmRate, the rest at the
// target rate (0 = as fast as credit allows).
func driveFair(addr, token string, base []event.Event, total, warm int, warmRate, rate float64, seqBase uint64) error {
	c, err := transport.Dial(transport.ClientConfig{
		Addr:        addr,
		BatchEvents: 128,
		Token:       token,
	})
	if err != nil {
		return err
	}
	buf := make([]event.Event, 0, 128)
	sent := 0
	seq := seqBase
	start := time.Now()
	interval := func() time.Duration {
		r := rate
		if sent < warm {
			r = warmRate
		}
		if r <= 0 {
			return 0
		}
		return time.Duration(float64(time.Second) / r)
	}
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := c.SubmitBatch(buf); err != nil {
			return err
		}
		buf = buf[:0]
		return nil
	}
	for sent < total {
		for _, ev := range base {
			if sent == total {
				break
			}
			ev.Seq = seq
			seq++
			buf = append(buf, ev)
			sent++
			if len(buf) == cap(buf) {
				if iv := interval(); iv > 0 {
					if d := time.Until(start.Add(time.Duration(sent) * iv)); d > 0 {
						time.Sleep(d)
					}
				}
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	_, err = c.Close()
	return err
}

// TestTenantFairnessSoak runs the compliant tenant alone, then again
// next to a noisy tenant offering a large multiple of its quota, and
// asserts the isolation contract.
func TestTenantFairnessSoak(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sc := fairScaleFor(testing.Short())

	alone := runFairness(t, sc, false)
	together := runFairness(t, sc, true)

	// The compliant tenant's output is byte-identical to its solo run:
	// same complex events, same order.
	baseB, contB := alone.streams["MarkB"], together.streams["MarkB"]
	if len(baseB) == 0 {
		t.Fatal("solo run detected no MarkB complex events; soak is vacuous")
	}
	if len(baseB) != len(contB) {
		t.Fatalf("MarkB stream length changed under contention: solo %d, contended %d", len(baseB), len(contB))
	}
	for i := range baseB {
		if baseB[i] != contB[i] {
			t.Fatalf("MarkB stream diverged at %d: solo %q, contended %q", i, baseB[i], contB[i])
		}
	}

	tidy, noisy := together.tenants["tidy"], together.tenants["noisy"]
	// The compliant tenant is never shed and never throttled.
	if tidy.Shed != 0 {
		t.Errorf("compliant tenant shed %d memberships under contention", tidy.Shed)
	}
	if tidy.ThrottledBatches != 0 {
		t.Errorf("compliant tenant hit the throttle %d times within its quota", tidy.ThrottledBatches)
	}
	// The noisy tenant pays for its own overage: the transport throttle
	// clamped its flood, and the budget directed the shedding at it.
	if noisy.ThrottledBatches == 0 {
		t.Error("noisy tenant offered far above quota but was never throttled")
	}
	if noisy.Shed == 0 {
		t.Error("noisy tenant's overage was never shed by the engine budget")
	}
	if noisy.Events <= tidy.Events {
		t.Errorf("noisy tenant landed %d events vs tidy's %d; flood did not exceed the compliant load", noisy.Events, tidy.Events)
	}

	// Latency isolation: the compliant tenant's p99 may regress by at
	// most 10% (plus a small absolute floor for scheduler noise on
	// loaded CI machines).
	baseT, ok := alone.tenants["tidy"]
	if !ok || baseT.Latency == nil || tidy.Latency == nil {
		t.Fatalf("missing tidy latency summaries (solo %+v, contended %+v)", alone.tenants, together.tenants)
	}
	baseP99, contP99 := baseT.Latency.P99US, tidy.Latency.P99US
	allowed := basP99Allowance(baseP99)
	if contP99 > allowed {
		t.Errorf("compliant tenant p99 %.0fus under contention, solo %.0fus (allowed %.0fus)",
			contP99, baseP99, allowed)
	}
	t.Logf("tidy p99 solo %.0fus contended %.0fus; noisy throttled %d shed %d",
		baseP99, contP99, noisy.ThrottledBatches, noisy.Shed)
}

// basP99Allowance is the contended-p99 ceiling: 10%% over the solo
// baseline, with a 5ms absolute floor so sub-millisecond baselines
// don't turn scheduler jitter into failures. The race detector
// multiplies every memory access and serializes the scheduler, so the
// flood's burst window — CPU work the isolation machinery cannot drop,
// only attribute — stretches over most of the shortened run; the race
// build keeps every behavioral assertion strict but checks latency
// against a 3x / +60ms envelope instead.
func basP99Allowance(base float64) float64 {
	mul, floor := 1.10, base+5000
	if raceEnabled {
		mul, floor = 3.0, base+60000
	}
	allowed := base * mul
	if floor > allowed {
		allowed = floor
	}
	return allowed
}

// TestTenantAuthRejected pins the admission edge: an unknown token is
// refused at the handshake, and the rejection is visible in the stats
// frame.
func TestTenantAuthRejected(t *testing.T) {
	harness.VerifyNoLeaks(t)
	sc := fairScaleFor(true)
	app, err := buildServe(fairOpts(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- app.eng.Run(context.Background()) }()
	var collect sync.WaitGroup
	for _, h := range app.handles {
		collect.Add(1)
		go func(h *engine.Query) {
			defer collect.Done()
			for range h.Out() {
			}
		}(h)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- app.srv.Serve(ln) }()
	defer func() {
		if err := app.srv.Shutdown(0); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-serveDone
		app.eng.CloseInput()
		<-runDone
		collect.Wait()
	}()

	if _, err := transport.Dial(transport.ClientConfig{
		Addr:  ln.Addr().String(),
		Token: "tok-wrong",
	}); err == nil {
		t.Fatal("unknown tenant token was accepted")
	}
	st := app.stats()
	if st.Server.AuthFailures == 0 {
		t.Errorf("auth failure not counted: %+v", st.Server)
	}
}
