//go:build !race

package main

// raceEnabled reports whether this test binary was built with the race
// detector; the subprocess kill soak runs only without it (CI gives it
// a dedicated non-race step).
const raceEnabled = false
