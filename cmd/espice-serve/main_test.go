package main

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/transport"
)

// startApp builds the app from opts, serves it on loopback, and
// registers a cancel-and-drain cleanup; it returns the address and the
// channel carrying run's result.
func startApp(t *testing.T, opts serveOpts) (*serveApp, string, *strings.Builder) {
	t.Helper()
	app, err := buildServe(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out strings.Builder
	runDone := make(chan error, 1)
	go func() { runDone <- app.run(ctx, ln, &out) }()
	t.Cleanup(func() {
		cancel()
		if err := <-runDone; err != nil {
			t.Errorf("run: %v\noutput:\n%s", err, out.String())
		}
	})
	return app, ln.Addr().String(), &out
}

// TestServeSmoke drives the sharded single-query server end to end over
// loopback: ingest a seeded stream, read the stats document, shut down
// cleanly.
func TestServeSmoke(t *testing.T) {
	harness.VerifyNoLeaks(t)
	opts := serveOpts{
		seconds: 120,
		seed:    1,
		n:       3,
		winSec:  15,
		shards:  2,
		shedder: "espice",
		bound:   200 * time.Millisecond,
		f:       0.7,
		credit:  2048,
		latEvry: 16,
	}
	app, addr, _ := startApp(t, opts)

	c, err := transport.Dial(transport.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	// The server derives its registry from the same dataset flags, so a
	// loadgen-regenerated stream speaks the same ids.
	_, events, _ := regen(t, opts)
	if err := c.SubmitBatch(events); err != nil {
		t.Fatal(err)
	}
	doc, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	var st serveStats
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatalf("stats document: %v\n%s", err, doc)
	}
	cs, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Accepted != uint64(len(events)) {
		t.Fatalf("accepted %d of %d", cs.Accepted, len(events))
	}
	if st.Server.EventsBinary == 0 {
		t.Errorf("stats document shows no ingested events: %+v", st)
	}

	// Shutdown (via the registered cleanup) must flush the windows; poll
	// the final drain through a second stats read is impossible after
	// close, so just assert the pipeline saw everything.
	waitFor(t, 5*time.Second, func() bool { return app.stats().Processed == uint64(len(events)) })
}

// TestServeEngineSmoke covers the -queries multi-query mode.
func TestServeEngineSmoke(t *testing.T) {
	harness.VerifyNoLeaks(t)
	qfile := filepath.Join(t.TempDir(), "queries.tesla")
	src := `
define MarkA
from seq(STR_A where kind = possession; any 2 distinct of DEF_B00, DEF_B01, DEF_B02, DEF_B03 where kind = defend)
within 15s
open STR_A
anchored

define MarkB
from seq(STR_B where kind = possession; any 2 distinct of DEF_A00, DEF_A01, DEF_A02, DEF_A03 where kind = defend)
within 15s
open STR_B
anchored
`
	if err := os.WriteFile(qfile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := serveOpts{
		seconds: 120,
		seed:    1,
		shedder: "espice",
		bound:   200 * time.Millisecond,
		f:       0.7,
		queries: qfile,
		credit:  2048,
		latEvry: 16,
	}
	app, addr, _ := startApp(t, opts)

	c, err := transport.Dial(transport.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	_, events, _ := regen(t, opts)
	if err := c.SubmitBatch(events); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		st := app.stats()
		return len(st.Queries) == 2 && st.Queries[0].Delivered > 0 && st.Queries[1].Delivered > 0
	})
}

// TestServeRejectsBadOpts pins flag validation.
func TestServeRejectsBadOpts(t *testing.T) {
	if _, err := buildServe(serveOpts{seconds: 10, seed: 1, n: 2, winSec: 15, shedder: "bl"}); err == nil {
		t.Error("shedder bl accepted")
	}
	if _, err := buildServe(serveOpts{seconds: 10, seed: 1, shedder: "none", queries: "/does/not/exist"}); err == nil {
		t.Error("missing queries file accepted")
	}
}

// regen regenerates the server's dataset from the same flags, as the
// load generator does.
func regen(t *testing.T, opts serveOpts) (*datasets.RTLSMeta, []event.Event, struct{}) {
	t.Helper()
	m, evs, err := datasets.GenerateRTLS(datasets.RTLSConfig{
		DurationSec: opts.seconds, Seed: opts.seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, evs, struct{}{}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
