// Command espice-query executes a Tesla-style textual query (see
// internal/tesla) against a CSV event stream (as produced by datagen),
// optionally under overload with eSPICE shedding, and prints the
// detected complex events.
//
// Example:
//
//	datagen -dataset rtls -seconds 600 -o rtls.csv
//	espice-query -data rtls.csv -query 'define M
//	  from seq(STR_A where kind = possession;
//	           any 2 distinct of DEF_B00, DEF_B01, DEF_B02 where kind = defend)
//	  within 15s
//	  open STR_A, STR_B
//	  anchored'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/operator"
	"repro/internal/sim"
	"repro/internal/tesla"
)

func main() {
	log.SetFlags(0)
	dataPath := flag.String("data", "", "CSV event stream (from datagen); required")
	queryText := flag.String("query", "", "query text; required (or -queryfile)")
	queryFile := flag.String("queryfile", "", "file containing the query text")
	schemaCSV := flag.String("schema", "", "comma-separated attribute names for where-clauses")
	overload := flag.Float64("overload", 0, "replay at this multiple of operator throughput with eSPICE shedding (0 = no shedding, plain replay)")
	trainFrac := flag.Float64("train", 0.5, "fraction of the stream used to train the shedder (only with -overload)")
	limit := flag.Int("limit", 20, "print at most this many complex events (0 = all)")
	flag.Parse()

	if *dataPath == "" {
		log.Fatal("espice-query: -data is required")
	}
	src := *queryText
	if src == "" && *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		src = string(b)
	}
	if src == "" {
		log.Fatal("espice-query: -query or -queryfile is required")
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	reg := event.NewRegistry()
	events, err := datasets.ReadCSV(f, reg)
	if closeErr := f.Close(); closeErr != nil {
		log.Fatal(closeErr)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(events) == 0 {
		log.Fatal("espice-query: empty event stream")
	}

	env := tesla.Env{Registry: reg}
	if *schemaCSV != "" {
		env.Schema = event.NewSchema(splitComma(*schemaCSV)...)
	}
	q, err := tesla.Parse(src, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "query %s over %d events (%d types)\n", q.Name, len(events), reg.Len())

	var detected []operator.ComplexEvent
	if *overload > 1 {
		mid := int(float64(len(events)) * *trainFrac)
		if mid <= 0 || mid >= len(events) {
			log.Fatal("espice-query: -train must leave both training and replay events")
		}
		res, err := harness.RunExperiment(harness.RunConfig{
			Query:          q,
			Train:          events[:mid],
			Eval:           events[mid:],
			OverloadFactor: *overload,
		}, harness.ShedESPICE)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "overloaded replay at %.2fx: %s (shed %.1f%%)\n",
			*overload, res.Quality, 100*res.ShedFraction)
		return
	}

	op, err := operator.New(operator.Config{Window: q.Window, Patterns: q.Patterns})
	if err != nil {
		log.Fatal(err)
	}
	detected, err = sim.ReplayUnshed(events, op)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "detected %d complex events\n", len(detected))
	for i, ce := range detected {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... and %d more\n", len(detected)-i)
			break
		}
		fmt.Printf("%s window=%d open@%d constituents=%v\n",
			ce.Pattern, ce.WindowID, ce.WindowOpen, ce.Constituents)
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
