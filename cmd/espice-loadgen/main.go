// Command espice-loadgen is the deterministic seeded load generator for
// espice-serve: it regenerates the same synthetic dataset the server
// derived its registry from (same -seconds/-seed flags), tiles it to
// the requested event budget, and replays it at a target rate over N
// concurrent binary-framed connections. Event content is fully
// determined by the seed; only the pacing is wall-clock.
//
// The report covers both sides of the wire: the client ledger (events
// sent/accepted, flush latencies, credit-wait time — the client-visible
// shape of server backpressure) and, when the server exposes its stats
// document, the server-side kept/shed/latency counters. With -json the
// summary is written as a machine-readable artifact (CI uploads it next
// to BENCH_results.json).
//
// -selftest spins up an in-process espice-serve-equivalent on loopback
// first, so the whole wire path can be exercised by one command with no
// external server — that is what CI runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// loadgenOpts bundles the command-line parameters.
type loadgenOpts struct {
	addr     string
	seconds  int
	seed     int64
	events   int
	rate     float64
	conns    int
	batch    int
	jsonOut  string
	selftest bool
	session  uint64
	ledger   bool
	token    string
}

func main() {
	log.SetFlags(0)
	opts := loadgenOpts{}
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:7071", "espice-serve address")
	flag.IntVar(&opts.seconds, "seconds", 900, "seconds of synthetic RTLS data (must match the server)")
	flag.Int64Var(&opts.seed, "seed", 1, "generator seed (must match the server)")
	flag.IntVar(&opts.events, "events", 500000, "total events to send, tiling the dataset as needed")
	flag.Float64Var(&opts.rate, "rate", 100000, "target total event rate (events/s, 0 = as fast as credit allows)")
	flag.IntVar(&opts.conns, "conns", 4, "concurrent connections")
	flag.IntVar(&opts.batch, "batch", 256, "client flush threshold in events")
	flag.StringVar(&opts.jsonOut, "json", "", "write the machine-readable summary to this file")
	flag.BoolVar(&opts.selftest, "selftest", false,
		"serve an in-process pipeline on loopback and drive it (ignores -addr)")
	flag.Uint64Var(&opts.session, "session", 0,
		"durable delivery: connection i uses session id session+i (0 = plain at-most-once; needs a -wal server)")
	flag.BoolVar(&opts.ledger, "ledger", false,
		"print the producer ledger fingerprint (count/sum/xor of sent event seqs) to compare against the server's")
	flag.StringVar(&opts.token, "token", "",
		"tenant token presented on every connection (needs a server with -tenants)")
	flag.Parse()

	if err := run(opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// summary is the machine-readable result document (-json artifact).
type summary struct {
	Events       int                    `json:"events"`
	Conns        int                    `json:"conns"`
	TargetRate   float64                `json:"target_rate"`
	AchievedRate float64                `json:"achieved_rate"`
	WallSeconds  float64                `json:"wall_seconds"`
	Sent         uint64                 `json:"sent"`
	Accepted     uint64                 `json:"accepted"`
	Redials      uint64                 `json:"redials"`
	Retransmits  uint64                 `json:"retransmits,omitempty"`
	CreditWaitMS float64                `json:"credit_wait_ms"`
	FlushLatency metrics.LatencySummary `json:"flush_latency"`
	Ledger       *ledgerSummary         `json:"ledger,omitempty"`
	ServerStats  json.RawMessage        `json:"server_stats,omitempty"`
	Chaos        *chaosSummary          `json:"chaos,omitempty"`
	Scaling      *scalingSummary        `json:"scaling,omitempty"`
	Tenants      []tenantSummary        `json:"tenants,omitempty"`
}

// chaosSummary lifts the server's fault-containment counters out of the
// stats document into the artifact's top level, so a CI run's graceful
// degradation (quarantined queries, lossy episodes, evicted
// connections) is visible without digging through server_stats.
type chaosSummary struct {
	Quarantines     uint64  `json:"quarantines"`
	DegradedSeconds float64 `json:"degraded_seconds"`
	EvictedConns    uint64  `json:"evicted_conns"`
	PanicsRecovered uint64  `json:"panics_recovered"`
}

// liftChaos extracts the chaos section from the server stats document
// (nil when the document is missing or does not carry one).
func liftChaos(doc []byte) *chaosSummary {
	if doc == nil {
		return nil
	}
	var probe struct {
		Chaos *chaosSummary `json:"chaos"`
	}
	if err := json.Unmarshal(doc, &probe); err != nil {
		return nil
	}
	return probe.Chaos
}

// scalingSummary lifts the server's skew-aware scale-out counters —
// work-stealing handoffs, the partitioner's live occupancy estimate and
// the per-shard backlog — out of the stats document into the artifact's
// top level, so a CI run shows at a glance whether a skewed stream was
// balanced across shards or pinned to one.
type scalingSummary struct {
	Steals       uint64 `json:"steals"`
	Occupancy    int64  `json:"occupancy"`
	ShardBacklog []int  `json:"shard_backlog,omitempty"`
}

// liftScaling extracts the scale-out counters from the server stats
// document (nil when the document is missing or reports no sharding).
func liftScaling(doc []byte) *scalingSummary {
	if doc == nil {
		return nil
	}
	var probe scalingSummary
	if err := json.Unmarshal(doc, &probe); err != nil {
		return nil
	}
	if probe.Steals == 0 && probe.Occupancy == 0 && len(probe.ShardBacklog) == 0 {
		return nil
	}
	return &probe
}

// tenantSummary lifts the server's per-tenant admission and shedding
// counters out of the stats document into the artifact's top level:
// what each tenant got in (events, throttling), how its ingress
// measured against quota, and what the utility shedder took from it.
// The fairness soak's CI artifact shows the noisy/compliant split
// without digging through server_stats.
type tenantSummary struct {
	Name             string  `json:"name"`
	Events           uint64  `json:"events"`
	ThrottledBatches uint64  `json:"throttled_batches"`
	ThrottleWaitMS   float64 `json:"throttle_wait_ms"`
	Submitted        uint64  `json:"submitted"`
	InputRate        float64 `json:"input_rate"`
	QuotaRate        float64 `json:"quota_rate"`
	DropShare        float64 `json:"drop_share"`
	Delivered        uint64  `json:"delivered"`
	Kept             uint64  `json:"kept"`
	Shed             uint64  `json:"shed"`
	ComplexEvents    uint64  `json:"complex_events"`
}

// liftTenants extracts the per-tenant counters from the server stats
// document (nil when the document is missing or the server runs
// single-tenant).
func liftTenants(doc []byte) []tenantSummary {
	if doc == nil {
		return nil
	}
	var probe struct {
		Tenants []tenantSummary `json:"tenants"`
	}
	if err := json.Unmarshal(doc, &probe); err != nil {
		return nil
	}
	return probe.Tenants
}

// ledgerSummary fingerprints the events this generator handed to
// SubmitBatch, order-independently, in the same shape espice-serve
// reports its delivery ledger: equal fingerprints on a drained durable
// run mean every sent event was delivered exactly once.
type ledgerSummary struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Xor   uint64 `json:"xor"`
}

func (l *ledgerSummary) add(events []event.Event) {
	for i := range events {
		l.Count++
		l.Sum += events[i].Seq
		l.Xor ^= events[i].Seq
	}
}

func (l *ledgerSummary) merge(o ledgerSummary) {
	l.Count += o.Count
	l.Sum += o.Sum
	l.Xor ^= o.Xor
}

// run drives the whole load generation and reporting; factored from
// main for tests.
func run(opts loadgenOpts, w io.Writer) error {
	if opts.conns < 1 {
		opts.conns = 1
	}
	meta, events, err := datasets.GenerateRTLS(datasets.RTLSConfig{
		DurationSec: opts.seconds, Seed: opts.seed,
	})
	if err != nil {
		return err
	}
	addr := opts.addr
	if opts.selftest {
		stop, selfAddr, err := startSelftestServer(meta)
		if err != nil {
			return err
		}
		defer stop()
		addr = selfAddr
		fmt.Fprintf(w, "selftest server on %s\n", addr)
	}

	fmt.Fprintf(w, "replaying %d events over %d conns at %.0f ev/s (dataset: %d events, seed %d)\n",
		opts.events, opts.conns, opts.rate, len(events), opts.seed)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		flushes metrics.LatencyTrace
		total   transport.ClientStats
		ledger  ledgerSummary
		firstE  error
		doc     []byte
	)
	perConn := opts.events / opts.conns
	perRate := opts.rate / float64(opts.conns)
	start := time.Now()
	for ci := 0; ci < opts.conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			extra := 0
			if ci == 0 {
				extra = opts.events - perConn*opts.conns
			}
			session := uint64(0)
			if opts.session != 0 {
				session = opts.session + uint64(ci)
			}
			st, trace, led, sdoc, err := driveConn(addr, events, ci, perConn+extra, perRate, opts.batch, session, opts.token, ci == 0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstE == nil {
				firstE = fmt.Errorf("conn %d: %w", ci, err)
				return
			}
			total.Sent += st.Sent
			total.Accepted += st.Accepted
			total.Redials += st.Redials
			total.Retransmits += st.Retransmits
			total.CreditWait += st.CreditWait
			ledger.merge(led)
			flushes.Merge(trace)
			if sdoc != nil {
				doc = sdoc
			}
		}(ci)
	}
	wg.Wait()
	if firstE != nil {
		return firstE
	}
	wall := time.Since(start)

	sum := summary{
		Events:       opts.events,
		Conns:        opts.conns,
		TargetRate:   opts.rate,
		AchievedRate: float64(total.Sent) / wall.Seconds(),
		WallSeconds:  wall.Seconds(),
		Sent:         total.Sent,
		Accepted:     total.Accepted,
		Redials:      total.Redials,
		Retransmits:  total.Retransmits,
		CreditWaitMS: float64(total.CreditWait.Milliseconds()),
		FlushLatency: flushes.Summary(),
		ServerStats:  doc,
		Chaos:        liftChaos(doc),
		Scaling:      liftScaling(doc),
		Tenants:      liftTenants(doc),
	}
	if opts.ledger {
		sum.Ledger = &ledger
	}
	if sum.TargetRate > 0 {
		fmt.Fprintf(w, "sent %d, accepted %d (%.1f%% of target rate, %.2fs wall)\n",
			sum.Sent, sum.Accepted, 100*sum.AchievedRate/sum.TargetRate, sum.WallSeconds)
	} else {
		fmt.Fprintf(w, "sent %d, accepted %d (%.0f ev/s, %.2fs wall)\n",
			sum.Sent, sum.Accepted, sum.AchievedRate, sum.WallSeconds)
	}
	fmt.Fprintf(w, "flush latency: mean %.1fms p95 %.1fms max %.1fms; credit wait %.0fms total\n",
		sum.FlushLatency.MeanUS/1000, sum.FlushLatency.P95US/1000, sum.FlushLatency.MaxUS/1000,
		sum.CreditWaitMS)
	if sum.Ledger != nil {
		fmt.Fprintf(w, "ledger: count %d sum %d xor %d (retransmits %d)\n",
			sum.Ledger.Count, sum.Ledger.Sum, sum.Ledger.Xor, sum.Retransmits)
	}
	for _, tn := range sum.Tenants {
		fmt.Fprintf(w, "tenant %s: events %d submitted %d throttled %d (%.0fms wait), rate %.0f/%.0f ev/s, kept %d shed %d\n",
			tn.Name, tn.Events, tn.Submitted, tn.ThrottledBatches, tn.ThrottleWaitMS,
			tn.InputRate, tn.QuotaRate, tn.Kept, tn.Shed)
	}
	if doc != nil {
		fmt.Fprintf(w, "server: %s\n", doc)
	}
	if opts.jsonOut != "" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.jsonOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "summary written to %s\n", opts.jsonOut)
	}
	return nil
}

// driveConn replays total events (tiling the base stream, sequence
// numbers rewritten to stay unique across connections) at the target
// per-connection rate, recording per-flush latencies and the producer
// ledger. A non-zero session opts into durable effectively-once
// delivery; a non-empty token presents a tenant identity. The stats
// requester additionally fetches the server's stats document before
// closing.
func driveConn(addr string, base []event.Event, ci, total int, rate float64, batch int, session uint64, token string, wantStats bool) (transport.ClientStats, *metrics.LatencyTrace, ledgerSummary, []byte, error) {
	trace := &metrics.LatencyTrace{}
	var led ledgerSummary
	c, err := transport.Dial(transport.ClientConfig{
		Addr:        addr,
		BatchEvents: batch,
		Reconnect:   true,
		Session:     session,
		Token:       token,
		Logf:        log.Printf,
	})
	if err != nil {
		return transport.ClientStats{}, trace, led, nil, err
	}
	buf := make([]event.Event, 0, batch)
	sent := 0
	seq := uint64(ci) << 40 // disjoint per-connection sequence ranges
	start := time.Now()
	interval := time.Duration(0)
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		t0 := time.Now()
		if err := c.SubmitBatch(buf); err != nil {
			return err
		}
		if err := c.Flush(); err != nil {
			return err
		}
		trace.Add(event.Time(t0.UnixMicro()), event.Time(time.Since(t0).Microseconds()))
		led.add(buf)
		buf = buf[:0]
		return nil
	}
	for sent < total {
		for _, ev := range base {
			if sent == total {
				break
			}
			ev.Seq = seq
			seq++
			buf = append(buf, ev)
			sent++
			if len(buf) == batch {
				if interval > 0 {
					if d := time.Until(start.Add(time.Duration(sent) * interval)); d > 0 {
						time.Sleep(d)
					}
				}
				if err := flush(); err != nil {
					return c.Stats(), trace, led, nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return c.Stats(), trace, led, nil, err
	}
	var doc []byte
	if wantStats {
		doc, err = c.ServerStats()
		if err != nil {
			return c.Stats(), trace, led, nil, err
		}
	}
	st, err := c.Close()
	return st, trace, led, doc, err
}

// startSelftestServer assembles a loopback espice-serve equivalent — a
// 2-shard Q1 pipeline behind a transport server — and returns its
// teardown and address.
func startSelftestServer(meta *datasets.RTLSMeta) (stop func(), addr string, err error) {
	query, err := queries.Q1(meta, 3, pattern.SelectFirst, 15)
	if err != nil {
		return nil, "", err
	}
	pipe, err := runtime.New(runtime.Config{
		Operator:           operator.Config{Window: query.Window, Patterns: query.Patterns},
		Shards:             2,
		LatencySampleEvery: 256,
	})
	if err != nil {
		return nil, "", err
	}
	runDone := make(chan error, 1)
	go func() { runDone <- pipe.Run(context.Background()) }()
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for range pipe.Out() {
		}
	}()
	srv, err := transport.NewServer(transport.ServerConfig{
		Sink:     pipe,
		Registry: meta.Registry,
		StatsJSON: func() []byte {
			doc, merr := json.Marshal(map[string]any{
				"stats":   pipe.Stats(),
				"latency": pipe.Latency().Summary(),
			})
			if merr != nil {
				return []byte("{}")
			}
			return doc
		},
	})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	stop = func() {
		srv.Close()
		<-serveDone
		pipe.CloseInput()
		<-runDone
		<-collected
	}
	return stop, ln.Addr().String(), nil
}
