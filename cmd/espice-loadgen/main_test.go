package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestLoadgenSelftest runs the whole command in -selftest mode: spin up
// the loopback server, drive it over 4 connections, and write the JSON
// summary artifact — the exact invocation CI uses.
func TestLoadgenSelftest(t *testing.T) {
	harness.VerifyNoLeaks(t)
	jsonOut := filepath.Join(t.TempDir(), "summary.json")
	var out strings.Builder
	err := run(loadgenOpts{
		seconds:  120,
		seed:     1,
		events:   30000,
		rate:     0,
		conns:    4,
		batch:    256,
		jsonOut:  jsonOut,
		selftest: true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	blob, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(blob, &sum); err != nil {
		t.Fatalf("summary artifact: %v\n%s", err, blob)
	}
	if sum.Sent != 30000 || sum.Accepted != 30000 {
		t.Errorf("ledger: sent=%d accepted=%d, want 30000 each", sum.Sent, sum.Accepted)
	}
	if sum.FlushLatency.Count == 0 {
		t.Error("no flush latencies recorded")
	}
	if len(sum.ServerStats) == 0 {
		t.Error("no server stats document collected")
	}
	if !strings.Contains(out.String(), "summary written to") {
		t.Errorf("missing artifact confirmation:\n%s", out.String())
	}
}

// TestLoadgenPaced covers the rate-paced path (low budget, high rate so
// the test stays fast) and the uneven events/conns remainder.
func TestLoadgenPaced(t *testing.T) {
	harness.VerifyNoLeaks(t)
	var out strings.Builder
	err := run(loadgenOpts{
		seconds:  60,
		seed:     2,
		events:   10001,
		rate:     2_000_000,
		conns:    3,
		batch:    128,
		selftest: true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "sent 10001, accepted 10001") {
		t.Errorf("remainder events lost:\n%s", out.String())
	}
}
