package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestLoadgenSelftest runs the whole command in -selftest mode: spin up
// the loopback server, drive it over 4 connections, and write the JSON
// summary artifact — the exact invocation CI uses.
func TestLoadgenSelftest(t *testing.T) {
	harness.VerifyNoLeaks(t)
	jsonOut := filepath.Join(t.TempDir(), "summary.json")
	var out strings.Builder
	err := run(loadgenOpts{
		seconds:  120,
		seed:     1,
		events:   30000,
		rate:     0,
		conns:    4,
		batch:    256,
		jsonOut:  jsonOut,
		selftest: true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	blob, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(blob, &sum); err != nil {
		t.Fatalf("summary artifact: %v\n%s", err, blob)
	}
	if sum.Sent != 30000 || sum.Accepted != 30000 {
		t.Errorf("ledger: sent=%d accepted=%d, want 30000 each", sum.Sent, sum.Accepted)
	}
	if sum.FlushLatency.Count == 0 {
		t.Error("no flush latencies recorded")
	}
	if len(sum.ServerStats) == 0 {
		t.Error("no server stats document collected")
	}
	if !strings.Contains(out.String(), "summary written to") {
		t.Errorf("missing artifact confirmation:\n%s", out.String())
	}
}

// TestLoadgenPaced covers the rate-paced path (low budget, high rate so
// the test stays fast) and the uneven events/conns remainder.
func TestLoadgenPaced(t *testing.T) {
	harness.VerifyNoLeaks(t)
	var out strings.Builder
	err := run(loadgenOpts{
		seconds:  60,
		seed:     2,
		events:   10001,
		rate:     2_000_000,
		conns:    3,
		batch:    128,
		selftest: true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "sent 10001, accepted 10001") {
		t.Errorf("remainder events lost:\n%s", out.String())
	}
}

// TestLoadgenDurableLedger covers -session/-ledger: durable sessions
// against the selftest server with the producer fingerprint emitted.
func TestLoadgenDurableLedger(t *testing.T) {
	harness.VerifyNoLeaks(t)
	var out strings.Builder
	err := run(loadgenOpts{
		seconds:  60,
		seed:     1,
		events:   8000,
		rate:     0,
		conns:    2,
		batch:    128,
		selftest: true,
		session:  501,
		ledger:   true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "sent 8000, accepted 8000") {
		t.Errorf("durable ledger incomplete:\n%s", out.String())
	}
	// The producer fingerprint is deterministic: seqs ci<<40 ..
	// ci<<40+perConn-1 for ci in 1..2.
	var wantSum, wantXor, wantCount uint64
	for ci := uint64(0); ci < 2; ci++ {
		for i := uint64(0); i < 4000; i++ {
			seq := ci<<40 + i
			wantCount++
			wantSum += seq
			wantXor ^= seq
		}
	}
	want := fmt.Sprintf("ledger: count %d sum %d xor %d", wantCount, wantSum, wantXor)
	if !strings.Contains(out.String(), want) {
		t.Errorf("missing %q in output:\n%s", want, out.String())
	}
}
