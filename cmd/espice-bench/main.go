// Command espice-bench regenerates the tables and figures of the eSPICE
// paper's evaluation (Section 4) on the synthetic workloads.
//
// Usage:
//
//	espice-bench -fig all            # every figure, default scale
//	espice-bench -fig 5a,5e,7        # selected figures
//	espice-bench -fig table1         # the running example
//	espice-bench -scale quick        # reduced sweeps (fast smoke run)
//	espice-bench -o results.txt      # also write to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
)

type figureFunc func(harness.Scale) (*harness.Figure, error)

func figureRegistry() map[string]figureFunc {
	return map[string]figureFunc{
		"5a":      harness.Fig5a,
		"5b":      harness.Fig5b,
		"5c":      harness.Fig5c,
		"5d":      harness.Fig5d,
		"5e":      harness.Fig5e,
		"5f":      harness.Fig5f,
		"6a":      harness.Fig6a,
		"6b":      harness.Fig6b,
		"7":       harness.Fig7,
		"8a":      harness.Fig8a,
		"8b":      harness.Fig8b,
		"9a":      harness.Fig9a,
		"9b":      harness.Fig9b,
		"ablpart": harness.AblationPartitioning,
		"ablshed": harness.AblationShedders,
	}
}

// figureOrder keeps -fig all output in the paper's order.
var figureOrder = []string{
	"table1", "5a", "5b", "5c", "5d", "5e", "5f", "6a", "6b",
	"7", "8a", "8b", "9a", "9b", "10", "ablpart", "ablshed",
}

func main() {
	log.SetFlags(0)
	figs := flag.String("fig", "all", "comma-separated figure ids (5a..9b, 7, 10, table1, ablpart, ablshed) or 'all'")
	scaleName := flag.String("scale", "default", "experiment scale: default or quick")
	outPath := flag.String("o", "", "also write results to this file")
	flag.Parse()

	var scale harness.Scale
	switch *scaleName {
	case "default":
		scale = harness.DefaultScale()
	case "quick":
		scale = harness.QuickScale()
	default:
		log.Fatalf("unknown scale %q (want default or quick)", *scaleName)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Printf("closing %s: %v", *outPath, err)
			}
		}()
		out = io.MultiWriter(os.Stdout, f)
	}

	wanted := parseWanted(*figs)
	registry := figureRegistry()
	for _, id := range figureOrder {
		if !wanted[id] && !wanted["all"] {
			continue
		}
		start := time.Now()
		switch id {
		case "table1":
			text, err := harness.RunningExample()
			if err != nil {
				log.Fatalf("table1: %v", err)
			}
			fmt.Fprintln(out, text)
		case "10":
			fig, err := harness.MeasureShedderOverhead(
				[]int{2000, 3000, 4000, 8000, 16000}, 500, 1000)
			if err != nil {
				log.Fatalf("fig 10: %v", err)
			}
			fmt.Fprintln(out, fig.Render())
		default:
			fn, ok := registry[id]
			if !ok {
				log.Fatalf("unknown figure %q", id)
			}
			fig, err := fn(scale)
			if err != nil {
				log.Fatalf("fig %s: %v", id, err)
			}
			fmt.Fprintln(out, fig.Render())
		}
		fmt.Fprintf(out, "(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	// Reject unknown requested ids so typos fail loudly.
	known := make(map[string]bool, len(figureOrder)+1)
	known["all"] = true
	for _, id := range figureOrder {
		known[id] = true
	}
	var unknown []string
	for id := range wanted {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		log.Fatalf("unknown figure ids: %s", strings.Join(unknown, ", "))
	}
}

func parseWanted(s string) map[string]bool {
	out := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		if part != "" {
			out[part] = true
		}
	}
	return out
}
