// Command doccheck is the documentation gate: it fails (exit 1) when an
// exported identifier in the target packages lacks a doc comment. The
// default targets are the public surface of the repository — the facade
// package at the root, the engine deployment layer and the wire
// transport:
//
//	go run ./cmd/doccheck            # check ., ./internal/engine, ./internal/transport
//	go run ./cmd/doccheck ./dir ...  # check explicit directories
//
// Rules, mirroring revive's exported rule: top-level exported functions,
// types, constants and variables need a doc comment on the declaration
// or on the enclosing group; methods with exported names on exported
// receiver types need one too. Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	targets := os.Args[1:]
	if len(targets) == 0 {
		targets = []string{".", "./internal/engine", "./internal/transport", "./internal/wal"}
	}
	bad := 0
	for _, dir := range targets {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, file := range files {
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			bad += checkFile(file)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// checkFile reports the undocumented exported identifiers of one file.
func checkFile(path string) int {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: %s %s has no doc comment\n", fset.Position(pos), kind, name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "func", d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						// A group doc ("// Pattern policies.") covers every
						// member of the block, matching the package style.
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(name.Pos(), d.Tok.String(), name.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedReceiver reports whether a function is either free-standing or
// a method on an exported receiver type; methods of unexported types are
// not part of the public surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true // unusual receiver shape: err on the safe side
		}
	}
}
