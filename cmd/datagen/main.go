// Command datagen emits the synthetic datasets as CSV for inspection or
// external tooling.
//
// Usage:
//
//	datagen -dataset nyse -minutes 120 -o nyse.csv
//	datagen -dataset rtls -seconds 1800 -o rtls.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/datasets"
	"repro/internal/queries"
)

func main() {
	log.SetFlags(0)
	dataset := flag.String("dataset", "nyse", "dataset to generate: nyse or rtls")
	outPath := flag.String("o", "", "output CSV path (default stdout)")
	seed := flag.Int64("seed", 1, "generator seed")
	minutes := flag.Int("minutes", 120, "nyse: stream length in minutes")
	seconds := flag.Int("seconds", 1800, "rtls: stream length in seconds")
	hot := flag.Bool("hot", true, "nyse: include the hot symbols query Q4 needs")
	flag.Parse()

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("closing %s: %v", *outPath, err)
			}
		}()
		out = f
	}

	switch *dataset {
	case "nyse":
		cfg := datasets.NYSEConfig{Minutes: *minutes, Seed: *seed, InfluenceProb: 0.95}
		if *hot {
			cfg.HotSymbols = queries.Q4HotSymbolIDs(datasets.NYSEConfig{Leaders: 5})
			cfg.HotQuotesPerMinute = 10
		}
		meta, evs, err := datasets.GenerateNYSE(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := datasets.WriteCSV(out, meta.Registry, evs); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d NYSE events (%d symbols, %.1f ev/s)\n",
			len(evs), meta.Config.Symbols, meta.Rate)
	case "rtls":
		meta, evs, err := datasets.GenerateRTLS(datasets.RTLSConfig{
			DurationSec: *seconds, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := datasets.WriteCSV(out, meta.Registry, evs); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d RTLS events (%.1f ev/s)\n", len(evs), meta.Rate)
	default:
		log.Fatalf("unknown dataset %q (want nyse or rtls)", *dataset)
	}
}
