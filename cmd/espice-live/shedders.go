package main

import (
	"repro/internal/baseline"
	"repro/internal/harness"
	"repro/internal/queries"
)

func newBLShedder(q queries.Query, tr *harness.TrainResult, seed int64) (*baseline.BL, error) {
	return baseline.NewBL(baseline.BLConfig{
		Types:   q.NumTypes,
		Weights: q.MergedTypeWeights(),
		Freq:    tr.TypeFreq,
		Seed:    seed,
	})
}

func newRandomShedder(seed int64) *baseline.Random {
	return baseline.NewRandom(seed)
}
