// Command espice-live replays a synthetic dataset through the live
// goroutine/channel pipeline at a configurable overload and reports
// latency and quality statistics — a wall-clock counterpart to the
// deterministic simulator used by espice-bench.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	seconds := flag.Int("seconds", 900, "seconds of synthetic RTLS data")
	n := flag.Int("n", 4, "Q1 pattern size")
	seed := flag.Int64("seed", 1, "generator seed")
	delay := flag.Duration("delay", 2*time.Millisecond, "processing cost per kept membership")
	bound := flag.Duration("bound", 500*time.Millisecond, "latency bound LB")
	fval := flag.Float64("f", 0.7, "shedding trigger fraction f")
	overload := flag.Float64("overload", 1.3, "input rate as a multiple of capacity")
	shedderName := flag.String("shedder", "espice", "shedder: espice, bl, random, none")
	flag.Parse()

	meta, events, err := datasets.GenerateRTLS(datasets.RTLSConfig{
		DurationSec: *seconds, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	query, err := queries.Q1(meta, *n, pattern.SelectFirst, 15)
	if err != nil {
		log.Fatal(err)
	}
	train, eval := harness.SplitHalf(events)
	tr, err := harness.Train(query, train, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d windows (%d matches)\n", tr.Windows, tr.Matches)

	// Ground truth for quality comparison.
	truthOp, err := operator.New(operator.Config{Window: query.Window, Patterns: query.Patterns})
	if err != nil {
		log.Fatal(err)
	}
	truth, err := sim.ReplayUnshed(eval, truthOp)
	if err != nil {
		log.Fatal(err)
	}

	var (
		decider operator.Decider
		ctrl    sim.Controller
	)
	switch *shedderName {
	case "espice":
		s, err := core.NewShedder(tr.Model)
		if err != nil {
			log.Fatal(err)
		}
		decider, ctrl = s, harness.ESPICEController{S: s}
	case "bl":
		bl, err := newBL(query, tr, *seed)
		if err != nil {
			log.Fatal(err)
		}
		decider, ctrl = bl.decider, bl.ctrl
	case "random":
		r := newRandomPair(*seed)
		decider, ctrl = r.decider, r.ctrl
	case "none":
	default:
		log.Fatalf("unknown shedder %q", *shedderName)
	}

	cfg := runtime.Config{
		Operator: operator.Config{
			Window:   query.Window,
			Patterns: query.Patterns,
			Shedder:  decider,
		},
		PollInterval:    5 * time.Millisecond,
		ProcessingDelay: *delay,
	}
	if ctrl != nil {
		det, err := core.NewOverloadDetector(core.DetectorConfig{
			LatencyBound: event.Time(bound.Microseconds()),
			F:            *fval,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Detector, cfg.Controller = det, ctrl
	}
	pipe, err := runtime.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background()) }()
	var detected []operator.ComplexEvent
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for ce := range pipe.Out() {
			detected = append(detected, ce)
		}
	}()

	kbar := tr.MembershipFactor
	capacity := float64(time.Second) / float64(*delay) / kbar
	rate := *overload * capacity
	fmt.Printf("replaying %d events at %.0f ev/s (capacity ~%.0f ev/s, shedder %s)\n",
		len(eval), rate, capacity, *shedderName)
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	for i, e := range eval {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		pipe.Submit(e)
	}
	pipe.CloseInput()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	<-collected

	st := pipe.Stats()
	lat := pipe.Latency()
	quality := metrics.CompareQuality(truth, detected)
	fmt.Printf("\nquality:  %s\n", quality)
	fmt.Printf("shedding: %d of %d memberships (%.1f%%)\n",
		st.Operator.MembershipsShed, st.Operator.Memberships,
		100*float64(st.Operator.MembershipsShed)/float64(max(1, st.Operator.Memberships)))
	fmt.Printf("latency:  mean %.1fms  p95 %.1fms  max %.1fms\n",
		float64(lat.Mean())/1000, float64(lat.Percentile(95))/1000, float64(lat.Max())/1000)
	fmt.Printf("violations of LB=%v: %d of %d\n",
		*bound, lat.ViolationCount(event.Time(bound.Microseconds())), lat.Len())
}

type shedPair struct {
	decider operator.Decider
	ctrl    sim.Controller
}

func newBL(q queries.Query, tr *harness.TrainResult, seed int64) (shedPair, error) {
	bl, err := newBLShedder(q, tr, seed)
	if err != nil {
		return shedPair{}, err
	}
	return shedPair{decider: bl, ctrl: harness.BLController{B: bl}}, nil
}

func newRandomPair(seed int64) shedPair {
	r := newRandomShedder(seed)
	return shedPair{decider: r, ctrl: harness.RandomController{R: r}}
}
