// Command espice-live replays a synthetic dataset through the live
// goroutine/channel pipeline at a configurable overload and reports
// latency and quality statistics — a wall-clock counterpart to the
// deterministic simulator used by espice-bench. With -shards > 1 the
// pipeline runs as a sharded multi-operator deployment: windows are
// placed on the least-loaded of the parallel operator instances (and
// re-balanced by work stealing under skew), each with its own load
// shedder, all commanded in lockstep by one overload detector.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/pattern"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// liveOpts bundles the command-line parameters so the whole replay is
// callable from tests.
type liveOpts struct {
	seconds  int
	n        int
	seed     int64
	delay    time.Duration
	bound    time.Duration
	f        float64
	overload float64
	shedder  string
	shards   int
	queries  string
	retrain  bool
	drift    bool
	warmup   int

	// cleanup registers the pipeline/engine teardown (idempotent: close
	// input, join the run and collector goroutines). Tests pass
	// t.Cleanup so an early test failure still drains every goroutine;
	// when nil, the teardown runs when the replay returns — including
	// the error paths.
	cleanup func(func())
}

// liveResult carries the counters a caller (or test) may want to assert
// on after the replay.
type liveResult struct {
	stats   runtime.Stats
	quality metrics.Quality
}

func main() {
	log.SetFlags(0)
	opts := liveOpts{}
	flag.IntVar(&opts.seconds, "seconds", 900, "seconds of synthetic RTLS data")
	flag.IntVar(&opts.n, "n", 4, "Q1 pattern size")
	flag.Int64Var(&opts.seed, "seed", 1, "generator seed")
	flag.DurationVar(&opts.delay, "delay", 2*time.Millisecond, "processing cost per kept membership")
	flag.DurationVar(&opts.bound, "bound", 500*time.Millisecond, "latency bound LB")
	flag.Float64Var(&opts.f, "f", 0.7, "shedding trigger fraction f")
	flag.Float64Var(&opts.overload, "overload", 1.3, "input rate as a multiple of capacity")
	flag.StringVar(&opts.shedder, "shedder", "espice", "shedder: espice, bl, random, none")
	flag.IntVar(&opts.shards, "shards", 1, "parallel operator instances")
	flag.StringVar(&opts.queries, "queries", "",
		"multi-query mode: file of Tesla-text define blocks run side by side on the engine")
	flag.BoolVar(&opts.retrain, "retrain", false,
		"online model lifecycle: start untrained and train the eSPICE model from live traffic")
	flag.BoolVar(&opts.drift, "drift", false,
		"with -retrain: retrain automatically when the drift detector alarms")
	flag.IntVar(&opts.warmup, "warmup", 16,
		"with -retrain: sampled windows required before a model is built")
	flag.Parse()

	if opts.queries != "" {
		if _, err := runQueries(opts, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if _, err := runLive(opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// makeShutdown builds the idempotent teardown shared by runLive and
// runQueries: seal the input, join the run goroutine (capturing its
// error behind the returned pointer) and wait for the output collector.
// Every exit routes through it — it is registered with opts.cleanup
// (tests pass t.Cleanup, so even an early test failure drains all
// goroutines) and additionally deferred by the caller for the non-test
// path.
func makeShutdown(opts liveOpts, closeInput func(), done chan error, collected chan struct{}) (func(), *error) {
	var (
		once   sync.Once
		runErr error
	)
	shutdown := func() {
		once.Do(func() {
			closeInput()
			runErr = <-done
			<-collected
		})
	}
	if opts.cleanup != nil {
		opts.cleanup(shutdown)
	}
	return shutdown, &runErr
}

// newShedPair builds one decider/controller instance of the requested
// kind; sharded runs call it once per shard so every shard gets its own
// shedder state. model is the eSPICE starting model — the offline-trained
// one, or an untrained placeholder in -retrain mode.
func newShedPair(name string, q queries.Query, tr *harness.TrainResult, model *core.Model, seed int64) (operator.Decider, sim.Controller, error) {
	switch name {
	case "espice":
		s, err := core.NewShedder(model)
		if err != nil {
			return nil, nil, err
		}
		return s, harness.ESPICEController{S: s}, nil
	case "bl":
		bl, err := newBLShedder(q, tr, seed)
		if err != nil {
			return nil, nil, err
		}
		return bl, harness.BLController{B: bl}, nil
	case "random":
		r := newRandomShedder(seed)
		return r, harness.RandomController{R: r}, nil
	case "none":
		return nil, nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown shedder %q", name)
	}
}

func runLive(opts liveOpts, w io.Writer) (*liveResult, error) {
	if opts.shards < 1 {
		opts.shards = 1
	}
	meta, events, err := datasets.GenerateRTLS(datasets.RTLSConfig{
		DurationSec: opts.seconds, Seed: opts.seed,
	})
	if err != nil {
		return nil, err
	}
	query, err := queries.Q1(meta, opts.n, pattern.SelectFirst, 15)
	if err != nil {
		return nil, err
	}
	train, eval := harness.SplitHalf(events)
	tr, err := harness.Train(query, train, 0, 0)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "trained on %d windows (%d matches)\n", tr.Windows, tr.Matches)

	// Ground truth for quality comparison.
	truthOp, err := operator.New(operator.Config{Window: query.Window, Patterns: query.Patterns})
	if err != nil {
		return nil, err
	}
	truth, err := sim.ReplayUnshed(eval, truthOp)
	if err != nil {
		return nil, err
	}

	cfg := runtime.Config{
		Operator: operator.Config{
			Window:   query.Window,
			Patterns: query.Patterns,
		},
		PollInterval:    5 * time.Millisecond,
		ProcessingDelay: opts.delay,
		Shards:          opts.shards,
	}
	// In -retrain mode the pipeline owns the model lifecycle: shedders
	// start over an untrained model and come online once the in-flight
	// training is warm; -drift arms automatic retraining on input shift.
	shedModel := tr.Model
	if opts.retrain {
		if opts.shedder != "espice" {
			return nil, fmt.Errorf("-retrain needs shedder espice, got %q", opts.shedder)
		}
		n := query.Window.SizeHint
		if n <= 0 {
			n = 1
		}
		shedModel, err = core.NewUntrainedModel(query.NumTypes, n, 0)
		if err != nil {
			return nil, err
		}
		cfg.Lifecycle = &runtime.LifecycleConfig{
			Types:         query.NumTypes,
			WarmupWindows: opts.warmup,
		}
		if opts.drift {
			cfg.Lifecycle.Drift = &core.DriftConfig{}
		}
	}
	// One shedder instance per shard (one in total when serial), all
	// driven in lockstep by a single detector.
	var controllers runtime.MultiController
	for i := 0; i < opts.shards; i++ {
		decider, ctrl, err := newShedPair(opts.shedder, query, tr, shedModel, opts.seed+int64(i))
		if err != nil {
			return nil, err
		}
		if decider == nil {
			break
		}
		if opts.shards > 1 {
			cfg.ShardDeciders = append(cfg.ShardDeciders, decider)
		} else {
			cfg.Operator.Shedder = decider
		}
		controllers = append(controllers, ctrl)
	}
	if len(controllers) > 0 {
		det, err := core.NewOverloadDetector(core.DetectorConfig{
			LatencyBound: event.Time(opts.bound.Microseconds()),
			F:            opts.f,
		})
		if err != nil {
			return nil, err
		}
		cfg.Detector, cfg.Controller = det, controllers
	}
	pipe, err := runtime.New(cfg)
	if err != nil {
		return nil, err
	}

	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background()) }()
	var detected []operator.ComplexEvent
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for ce := range pipe.Out() {
			detected = append(detected, ce)
		}
	}()
	shutdown, runErr := makeShutdown(opts, pipe.CloseInput, done, collected)
	defer shutdown()

	kbar := tr.MembershipFactor
	capacity := float64(opts.shards) * float64(time.Second) / float64(opts.delay) / kbar
	rate := opts.overload * capacity
	fmt.Fprintf(w, "replaying %d events at %.0f ev/s (capacity ~%.0f ev/s, shedder %s, shards %d)\n",
		len(eval), rate, capacity, opts.shedder, opts.shards)
	pacedReplay(eval, rate, pipe.SubmitBatch)
	shutdown()
	if *runErr != nil {
		return nil, *runErr
	}

	st := pipe.Stats()
	lat := pipe.Latency()
	quality := metrics.CompareQuality(truth, detected)
	fmt.Fprintf(w, "\nquality:  %s\n", quality)
	fmt.Fprintf(w, "shedding: %d of %d memberships (%.1f%%)\n",
		st.Operator.MembershipsShed, st.Operator.Memberships,
		100*float64(st.Operator.MembershipsShed)/float64(max(1, st.Operator.Memberships)))
	for i, ss := range st.Shards {
		fmt.Fprintf(w, "  shard %d: %d memberships, %d kept, %d shed, %d windows, %d complex events, %d pool misses, %d steals, occupancy %d (th ~%.0f ev/s)\n",
			i, ss.Memberships, ss.Kept, ss.Shed, ss.WindowsClosed, ss.ComplexEvents, ss.PoolMisses, ss.Steals, ss.Occupancy, ss.Throughput)
	}
	if st.Lifecycle != nil {
		ls := st.Lifecycle
		fmt.Fprintf(w, "lifecycle: trained=%v builds=%d drift-alarms=%d sampled-windows=%d (model: %d windows, %d matches)\n",
			ls.Trained, ls.Builds, ls.DriftAlarms, ls.WindowsSampled, ls.ModelWindows, ls.ModelMatches)
	}
	fmt.Fprintf(w, "latency:  mean %.1fms  p95 %.1fms  max %.1fms\n",
		float64(lat.Mean())/1000, float64(lat.Percentile(95))/1000, float64(lat.Max())/1000)
	fmt.Fprintf(w, "violations of LB=%v: %d of %d\n",
		opts.bound, lat.ViolationCount(event.Time(opts.bound.Microseconds())), lat.Len())
	return &liveResult{stats: st, quality: quality}, nil
}
