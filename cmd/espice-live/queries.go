package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/operator"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/tesla"
)

// queriesResult carries the multi-query replay outcome for tests.
type queriesResult struct {
	stats   engine.Stats
	quality map[string]metrics.Quality
}

// runQueries is the -queries mode: load several Tesla-text queries from a
// file, train one eSPICE model per query on its filtered half of an RTLS
// stream, and replay the evaluation half through the multi-query engine
// under the global shedding budget.
func runQueries(opts liveOpts, w io.Writer) (*queriesResult, error) {
	src, err := os.ReadFile(opts.queries)
	if err != nil {
		return nil, err
	}
	if opts.shedder != "espice" && opts.shedder != "none" {
		return nil, fmt.Errorf("-queries mode supports shedder espice or none, got %q", opts.shedder)
	}
	if opts.retrain && opts.shedder != "espice" {
		return nil, fmt.Errorf("-retrain needs shedder espice, got %q", opts.shedder)
	}
	meta, events, err := datasets.GenerateRTLS(datasets.RTLSConfig{
		DurationSec: opts.seconds, Seed: opts.seed,
	})
	if err != nil {
		return nil, err
	}
	qs, err := tesla.ParseMulti(string(src), tesla.Env{Registry: meta.Registry, Schema: meta.Schema})
	if err != nil {
		return nil, err
	}
	train, eval := harness.SplitHalf(events)

	eng, err := engine.New(engine.Config{
		LatencyBound: event.Time(opts.bound.Microseconds()),
		F:            opts.f,
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}

	// Per query: train on the filtered training half (the engine's view of
	// the stream), compute the unshed ground truth on the filtered eval
	// half, and register with the trained model.
	type registered struct {
		q      queries.Query
		h      *engine.Query
		truth  []operator.ComplexEvent
		shareC float64 // delivered fraction of the ingress stream
		kbar   float64
	}
	regs := make([]*registered, 0, len(qs))
	capacity := 0.0
	for _, q := range qs {
		ftrain := engine.FilterStream(q, train)
		if len(ftrain) == 0 {
			return nil, fmt.Errorf("query %s: filter leaves no training events", q.Name)
		}
		tr, err := harness.Train(q, ftrain, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("query %s: %w", q.Name, err)
		}
		fmt.Fprintf(w, "%-12s trained on %d windows (%d matches), %d/%d training events pass filter\n",
			q.Name, tr.Windows, tr.Matches, len(ftrain), len(train))

		feval := engine.FilterStream(q, eval)
		truthOp, err := operator.New(operator.Config{Window: q.Window, Patterns: q.Patterns})
		if err != nil {
			return nil, err
		}
		truth, err := sim.ReplayUnshed(feval, truthOp)
		if err != nil {
			return nil, err
		}

		qcfg := engine.QueryConfig{
			Query:           q,
			ProcessingDelay: opts.delay,
			Shards:          opts.shards,
		}
		if opts.shedder == "espice" {
			if opts.retrain {
				// Online lifecycle: register untrained, train from the
				// query's own filtered traffic (-drift adds automatic
				// retraining); the offline model stays a reference only.
				qcfg.Lifecycle = &runtime.LifecycleConfig{
					WarmupWindows: opts.warmup,
				}
				if opts.drift {
					qcfg.Lifecycle.Drift = &core.DriftConfig{}
				}
			} else {
				qcfg.Model = tr.Model
			}
		}
		h, err := eng.Register(qcfg)
		if err != nil {
			return nil, err
		}
		share := float64(len(ftrain)) / float64(len(train))
		regs = append(regs, &registered{q: q, h: h, truth: truth, shareC: share, kbar: tr.MembershipFactor})
		// The query saturates when its delivered rate share*R reaches its
		// per-pipeline capacity; track the tightest ingress bound.
		if opts.delay > 0 && share > 0 {
			qcap := float64(opts.shards) * float64(time.Second) / float64(opts.delay) / tr.MembershipFactor / share
			if capacity == 0 || qcap < capacity {
				capacity = qcap
			}
		}
	}

	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()
	// One drain goroutine per query: a sequential drain would stop
	// reading the later queries' channels, and a query that fills its
	// OutBuffer stalls its pipeline and backpressures the whole engine.
	detected := make(map[string][]operator.ComplexEvent, len(regs))
	var detectedMu sync.Mutex
	var drains sync.WaitGroup
	collected := make(chan struct{})
	for _, r := range regs {
		drains.Add(1)
		go func(h *engine.Query) {
			defer drains.Done()
			for ce := range h.Out() {
				detectedMu.Lock()
				detected[h.Name()] = append(detected[h.Name()], ce)
				detectedMu.Unlock()
			}
		}(r.h)
	}
	go func() {
		defer close(collected)
		drains.Wait()
	}()
	shutdown, runErr := makeShutdown(opts, eng.CloseInput, done, collected)
	defer shutdown()

	rate := opts.overload * capacity
	if rate <= 0 {
		rate = 50000 // no artificial cost: replay fast
	}
	fmt.Fprintf(w, "replaying %d events at %.0f ev/s across %d queries (bottleneck capacity ~%.0f ev/s, shedder %s)\n",
		len(eval), rate, len(regs), capacity, opts.shedder)
	pacedReplay(eval, rate, eng.SubmitBatch)
	shutdown()
	if *runErr != nil {
		return nil, *runErr
	}

	res := &queriesResult{stats: eng.Stats(), quality: make(map[string]metrics.Quality, len(regs))}
	fmt.Fprintf(w, "\nglobal budget: overloaded=%v drop-rate=%.0f ev/s\n",
		res.stats.Overloaded, res.stats.DropRate)
	for _, r := range regs {
		qual := metrics.CompareQuality(r.truth, detected[r.h.Name()])
		res.quality[r.h.Name()] = qual
		qst := r.h.Stats()
		op := qst.Pipeline.Operator
		fmt.Fprintf(w, "%-12s quality %s | delivered %d skipped %d | shed %d of %d memberships (%.1f%%)\n",
			r.h.Name(), qual, qst.Delivered, qst.Skipped,
			op.MembershipsShed, op.Memberships,
			100*float64(op.MembershipsShed)/float64(max(1, op.Memberships)))
		if ls := qst.Pipeline.Lifecycle; ls != nil {
			fmt.Fprintf(w, "%-12s lifecycle trained=%v builds=%d drift-alarms=%d sampled-windows=%d\n",
				"", ls.Trained, ls.Builds, ls.DriftAlarms, ls.WindowsSampled)
		}
	}
	return res, nil
}
