package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// TestRunLiveSmoke exercises the whole command end-to-end on a small
// stream: generate, train, replay through a 2-shard live pipeline with
// per-shard eSPICE shedders, and report. It is sized to finish in about
// a second.
func TestRunLiveSmoke(t *testing.T) {
	harness.VerifyNoLeaks(t)
	var out strings.Builder
	res, err := runLive(liveOpts{
		cleanup:  t.Cleanup,
		seconds:  120,
		n:        3,
		seed:     1,
		delay:    200 * time.Microsecond,
		bound:    200 * time.Millisecond,
		f:        0.7,
		overload: 1.3,
		shedder:  "espice",
		shards:   2,
	}, &out)
	if err != nil {
		t.Fatalf("runLive: %v\noutput:\n%s", err, out.String())
	}
	st := res.stats
	if st.Processed == 0 || st.Submitted != st.Processed {
		t.Errorf("no events processed: %+v", st)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("expected 2 shard stats, got %d", len(st.Shards))
	}
	for i, ss := range st.Shards {
		if ss.Memberships == 0 {
			t.Errorf("shard %d processed no memberships", i)
		}
	}
	if st.Operator.WindowsClosed == 0 {
		t.Error("no windows closed")
	}
	if !strings.Contains(out.String(), "shard 1:") {
		t.Errorf("per-shard counters missing from report:\n%s", out.String())
	}
}

// TestRunLiveSerialSmoke covers the shards=1 path and the "none" shedder
// wiring.
func TestRunLiveSerialSmoke(t *testing.T) {
	harness.VerifyNoLeaks(t)
	var out strings.Builder
	res, err := runLive(liveOpts{
		cleanup:  t.Cleanup,
		seconds:  60,
		n:        3,
		seed:     2,
		delay:    100 * time.Microsecond,
		bound:    200 * time.Millisecond,
		f:        0.7,
		overload: 0.8,
		shedder:  "none",
		shards:   1,
	}, &out)
	if err != nil {
		t.Fatalf("runLive: %v\noutput:\n%s", err, out.String())
	}
	if res.stats.Processed == 0 {
		t.Errorf("no events processed: %+v", res.stats)
	}
	if res.stats.Operator.MembershipsShed != 0 {
		t.Errorf("shedder none must not shed: %+v", res.stats.Operator)
	}
}

// TestRunQueriesSmoke exercises the -queries multi-query mode end to
// end: parse a two-query Tesla file, train per-query models on filtered
// streams, replay through the engine under the global budget.
func TestRunQueriesSmoke(t *testing.T) {
	harness.VerifyNoLeaks(t)
	qfile := filepath.Join(t.TempDir(), "queries.tesla")
	src := `
# man-marking of striker A by the first markers of team B
define MarkA
from seq(STR_A where kind = possession; any 2 distinct of DEF_B00, DEF_B01, DEF_B02, DEF_B03 where kind = defend)
within 15s
open STR_A
anchored

define MarkB
from seq(STR_B where kind = possession; any 2 distinct of DEF_A00, DEF_A01, DEF_A02, DEF_A03 where kind = defend)
within 15s
open STR_B
anchored
`
	if err := os.WriteFile(qfile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	res, err := runQueries(liveOpts{
		cleanup:  t.Cleanup,
		seconds:  240,
		seed:     1,
		delay:    300 * time.Microsecond,
		bound:    200 * time.Millisecond,
		f:        0.7,
		overload: 1.3,
		shedder:  "espice",
		shards:   1,
		queries:  qfile,
	}, &out)
	if err != nil {
		t.Fatalf("runQueries: %v\noutput:\n%s", err, out.String())
	}
	if len(res.quality) != 2 {
		t.Fatalf("expected 2 per-query qualities, got %d", len(res.quality))
	}
	for _, name := range []string{"MarkA", "MarkB"} {
		if _, ok := res.quality[name]; !ok {
			t.Errorf("missing quality for %s", name)
		}
	}
	if len(res.stats.Queries) != 2 {
		t.Fatalf("expected 2 query stats, got %d", len(res.stats.Queries))
	}
	for _, qs := range res.stats.Queries {
		if qs.Delivered == 0 {
			t.Errorf("query %s received nothing", qs.Name)
		}
		if qs.Skipped == 0 {
			t.Errorf("query %s filtered nothing (filter inactive?)", qs.Name)
		}
	}
	if !strings.Contains(out.String(), "global budget:") {
		t.Errorf("missing budget report:\n%s", out.String())
	}

	// Unknown shedders are rejected in -queries mode.
	if _, err := runQueries(liveOpts{shedder: "bl", queries: qfile, seconds: 10}, &out); err == nil {
		t.Error("-queries with shedder bl must fail")
	}
}

// TestRunLiveRetrainSmoke covers the -retrain -drift online-lifecycle
// path: the pipeline starts with an untrained shedder, trains itself
// from live traffic and reports the lifecycle counters.
func TestRunLiveRetrainSmoke(t *testing.T) {
	harness.VerifyNoLeaks(t)
	var out strings.Builder
	res, err := runLive(liveOpts{
		cleanup:  t.Cleanup,
		seconds:  240,
		n:        3,
		seed:     1,
		delay:    200 * time.Microsecond,
		bound:    200 * time.Millisecond,
		f:        0.7,
		overload: 1.3,
		shedder:  "espice",
		shards:   2,
		retrain:  true,
		drift:    true,
		warmup:   4,
	}, &out)
	if err != nil {
		t.Fatalf("runLive -retrain: %v\noutput:\n%s", err, out.String())
	}
	st := res.stats
	if st.Processed == 0 || st.Submitted != st.Processed {
		t.Errorf("events lost under the lifecycle: %+v", st)
	}
	if st.Lifecycle == nil {
		t.Fatal("lifecycle stats missing")
	}
	if !st.Lifecycle.Trained || st.Lifecycle.Builds == 0 {
		t.Errorf("online training never came online: %+v\noutput:\n%s", *st.Lifecycle, out.String())
	}
	if !strings.Contains(out.String(), "lifecycle: trained=true") {
		t.Errorf("lifecycle report missing:\n%s", out.String())
	}

	// -retrain is an eSPICE-only mode.
	if _, err := runLive(liveOpts{shedder: "bl", retrain: true, seconds: 10, shards: 1}, &out); err == nil {
		t.Error("-retrain with shedder bl must fail")
	}
}
