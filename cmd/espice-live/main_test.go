package main

import (
	"strings"
	"testing"
	"time"
)

// TestRunLiveSmoke exercises the whole command end-to-end on a small
// stream: generate, train, replay through a 2-shard live pipeline with
// per-shard eSPICE shedders, and report. It is sized to finish in about
// a second.
func TestRunLiveSmoke(t *testing.T) {
	var out strings.Builder
	res, err := runLive(liveOpts{
		seconds:  120,
		n:        3,
		seed:     1,
		delay:    200 * time.Microsecond,
		bound:    200 * time.Millisecond,
		f:        0.7,
		overload: 1.3,
		shedder:  "espice",
		shards:   2,
	}, &out)
	if err != nil {
		t.Fatalf("runLive: %v\noutput:\n%s", err, out.String())
	}
	st := res.stats
	if st.Processed == 0 || st.Submitted != st.Processed {
		t.Errorf("no events processed: %+v", st)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("expected 2 shard stats, got %d", len(st.Shards))
	}
	for i, ss := range st.Shards {
		if ss.Memberships == 0 {
			t.Errorf("shard %d processed no memberships", i)
		}
	}
	if st.Operator.WindowsClosed == 0 {
		t.Error("no windows closed")
	}
	if !strings.Contains(out.String(), "shard 1:") {
		t.Errorf("per-shard counters missing from report:\n%s", out.String())
	}
}

// TestRunLiveSerialSmoke covers the shards=1 path and the "none" shedder
// wiring.
func TestRunLiveSerialSmoke(t *testing.T) {
	var out strings.Builder
	res, err := runLive(liveOpts{
		seconds:  60,
		n:        3,
		seed:     2,
		delay:    100 * time.Microsecond,
		bound:    200 * time.Millisecond,
		f:        0.7,
		overload: 0.8,
		shedder:  "none",
		shards:   1,
	}, &out)
	if err != nil {
		t.Fatalf("runLive: %v\noutput:\n%s", err, out.String())
	}
	if res.stats.Processed == 0 {
		t.Errorf("no events processed: %+v", res.stats)
	}
	if res.stats.Operator.MembershipsShed != 0 {
		t.Errorf("shedder none must not shed: %+v", res.stats.Operator)
	}
}
