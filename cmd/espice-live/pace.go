package main

import (
	"time"

	"repro/internal/event"
)

// batchSpan bounds how much stream time one submitted batch may cover.
// runtime.SubmitBatch stamps every event of a batch with one arrival
// time, so a batch spanning long wall-clock time would (a) inflate the
// reported queueing latency of the batch's later events and (b) spoof
// the detector's queue-fill trigger with artificial bursts. Keeping the
// span a few milliseconds makes both effects negligible while still
// amortizing the clock read at high rates.
const batchSpan = 4 * time.Millisecond

// pacedReplay feeds events to submit at the target rate (events per
// second), batching at most batchSpan worth of stream per call.
func pacedReplay(events []event.Event, rate float64, submit func([]event.Event)) {
	interval := time.Duration(float64(time.Second) / rate)
	batch := int(rate * batchSpan.Seconds())
	if batch < 1 {
		batch = 1
	}
	if batch > 64 {
		batch = 64
	}
	start := time.Now()
	for i := 0; i < len(events); i += batch {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		submit(events[i:min(i+batch, len(events))])
	}
}
