// Command benchjson converts `go test -bench` output read from stdin
// into a machine-readable JSON record, so the repository can track its
// performance trajectory (BENCH_results.json) and CI can publish it as
// an artifact. Each invocation appends one labeled run:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -out BENCH_results.json -label pr3
//
// Without -out the single run is printed to stdout. An existing -out
// file is extended (its previous runs are kept), which is what makes
// regression checks across PRs a simple diff of the same file.
//
// The compare subcommand diffs a fresh bench run (stdin) against the
// recorded trajectory and exits non-zero on regressions:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson compare -baseline BENCH_results.json
//
// The baseline per benchmark is its best (lowest ns/op) recording in
// the trajectory, so regressions cannot ratchet in through appended
// slow runs. A benchmark regresses when its ns/op worsens by more than
// -threshold (default 15%), or — for the zero-alloc gates, i.e.
// benchmarks whose baseline records allocs/op == 0 — when it allocates
// at all or its B/op grows. The comparison also checks the scale-out
// contract: within each BenchmarkPipelineShards variant, kept_ev/s must
// not fall below shards=1 and must grow monotonically with the shard
// count. When both the fresh run and the recorded trajectory were
// measured with GOMAXPROCS >= 4 the contract is a hard gate (violations
// exit 1); on smaller machines — which cannot measure real parallel
// speedup — it degrades to advisory WARN lines. Each run records its
// gomaxprocs, numcpu and git SHA so the gate can tell the two cases
// apart. `make bench` runs the comparison as a non-blocking report
// before appending the new run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Metrics maps a metric unit (ns/op, B/op, allocs/op, kept_ev/s, ...)
// to its measured value.
type Metrics map[string]float64

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string  `json:"name"`
	Runs    int64   `json:"runs"`
	Metrics Metrics `json:"metrics"`
}

// Run is one labeled benchmark invocation. GoMaxProcs is recovered from
// the -N suffix of the benchmark result lines (the procs the benchmarks
// actually ran with); NumCPU and GitSHA describe the machine and
// revision benchjson itself ran on. The proc counts decide whether the
// shard-scaling contract is enforced as a hard gate or only advisory —
// a run measured on a big machine must not be compared leniently just
// because the trajectory file also holds single-core runs.
type Run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	GoMaxProcs int         `json:"gomaxprocs,omitempty"`
	NumCPU     int         `json:"numcpu,omitempty"`
	GitSHA     string      `json:"git_sha,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the trajectory file layout: one run appended per invocation.
type File struct {
	Runs []Run `json:"runs"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		compareCmd(os.Args[2:])
		return
	}
	out := flag.String("out", "", "append the run to this JSON file (default: print to stdout)")
	label := flag.String("label", "", "label for this run (e.g. a PR number or git revision)")
	flag.Parse()

	run := readRun(os.Stdin)
	run.Label = *label
	run.Date = time.Now().UTC().Format("2006-01-02")

	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(run); err != nil {
			fatal(err)
		}
		return
	}

	var file File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fatal(fmt.Errorf("%s: %w", *out, err))
		}
	}
	file.Runs = append(file.Runs, run)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d benchmarks to %s (%d runs)\n",
		len(run.Benchmarks), *out, len(file.Runs))
}

// readRun parses a full `go test -bench` output stream into one Run,
// stamping the environment metadata (benchmark GOMAXPROCS, machine CPU
// count, git revision) the compare gate keys on.
func readRun(r *os.File) Run {
	var run Run
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			run.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, procs, ok := parseLine(line); ok {
				run.Benchmarks = append(run.Benchmarks, b)
				if procs > run.GoMaxProcs {
					run.GoMaxProcs = procs
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(run.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	if run.GoMaxProcs == 0 {
		// Bench lines carry no -N suffix when GOMAXPROCS is 1.
		run.GoMaxProcs = 1
	}
	run.NumCPU = runtime.NumCPU()
	if sha, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		run.GitSHA = strings.TrimSpace(string(sha))
	}
	return run
}

// compareCmd diffs the bench output on stdin against the most recent
// baseline recording of each benchmark and exits 1 on regressions:
// ns/op worse than the threshold, or — for zero-alloc gates (baseline
// allocs/op == 0) — any allocation or B/op growth.
func compareCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	baseline := fs.String("baseline", "BENCH_results.json", "trajectory file to compare against")
	threshold := fs.Float64("threshold", 0.15, "allowed fractional ns/op regression")
	_ = fs.Parse(args)

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	var file File
	if err := json.Unmarshal(data, &file); err != nil {
		fatal(fmt.Errorf("%s: %w", *baseline, err))
	}
	// Baseline per benchmark: the best (lowest ns/op) recording across
	// the whole trajectory, not the most recent one — comparing against
	// the latest run would let regressions ratchet (a slow run appended
	// by a previous `make bench` becomes the next run's baseline, and
	// creep below the threshold compounds undetected).
	base := make(map[string]Benchmark)
	baseLabel := make(map[string]string)
	for _, run := range file.Runs {
		for _, b := range run.Benchmarks {
			have, ok := base[b.Name]
			if ok && have.Metrics["ns/op"] > 0 &&
				(b.Metrics["ns/op"] <= 0 || b.Metrics["ns/op"] >= have.Metrics["ns/op"]) {
				continue
			}
			base[b.Name] = b
			baseLabel[b.Name] = run.Label
		}
	}

	cur := readRun(os.Stdin)
	hardGate, gateDetail := shardGate(cur, file)
	fmt.Printf("benchjson: fresh run gomaxprocs=%d numcpu=%d; %s\n",
		cur.GoMaxProcs, cur.NumCPU, gateDetail)
	regressions := 0
	for _, b := range cur.Benchmarks {
		ref, ok := base[b.Name]
		if !ok {
			fmt.Printf("new      %-50s (no baseline)\n", b.Name)
			continue
		}
		var problems []string
		if refNs, curNs := ref.Metrics["ns/op"], b.Metrics["ns/op"]; refNs > 0 && curNs > refNs*(1+*threshold) {
			problems = append(problems, fmt.Sprintf("ns/op %+.1f%% (%.1f -> %.1f)",
				100*(curNs/refNs-1), refNs, curNs))
		}
		if refAllocs, hasAllocs := ref.Metrics["allocs/op"]; hasAllocs && refAllocs == 0 {
			if curAllocs := b.Metrics["allocs/op"]; curAllocs > 0 {
				problems = append(problems, fmt.Sprintf("zero-alloc gate broken: allocs/op %.0f", curAllocs))
			}
			if refB, curB := ref.Metrics["B/op"], b.Metrics["B/op"]; curB > refB {
				problems = append(problems, fmt.Sprintf("zero-alloc gate B/op %.0f -> %.0f", refB, curB))
			}
		}
		if len(problems) == 0 {
			fmt.Printf("ok       %-50s vs %s\n", b.Name, baseLabel[b.Name])
			continue
		}
		regressions++
		fmt.Printf("REGRESSED %-49s vs %s: %s\n", b.Name, baseLabel[b.Name], strings.Join(problems, "; "))
	}
	violations := checkShardScaling(cur, hardGate)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond the %.0f%% budget\n",
			regressions, 100**threshold)
		os.Exit(1)
	}
	if violations > 0 && hardGate {
		fmt.Fprintf(os.Stderr, "benchjson: %d shard-scaling violation(s) with gomaxprocs >= 4 on both sides\n",
			violations)
		os.Exit(1)
	}
	fmt.Println("benchjson: no regressions against", *baseline)
}

// shardGate decides whether the shard-scaling contract is enforced as a
// hard gate (violations exit 1) or advisory WARN lines. Hard requires
// real parallelism on both sides: the fresh run ran with GOMAXPROCS
// >= 4, and the trajectory holds at least one recording that both
// stamped its proc count >= 4 AND measured the shard benchmarks. Runs
// from before proc stamping existed carry no gomaxprocs field — they
// are incomparable for the scaling contract and must degrade the gate
// to advisory, never satisfy it: a trajectory of only unstamped (or
// shard-benchmark-free) runs yields an advisory gate even on a big
// machine. The returned detail string explains the decision.
func shardGate(cur Run, file File) (hard bool, detail string) {
	baseProcs := 0
	stamped := false
	for _, run := range file.Runs {
		if run.GoMaxProcs <= 0 {
			continue // pre-stamping era: field absent, incomparable
		}
		hasShards := false
		for _, b := range run.Benchmarks {
			if strings.HasPrefix(b.Name, "BenchmarkPipelineShards") {
				hasShards = true
				break
			}
		}
		if !hasShards {
			continue
		}
		stamped = true
		if run.GoMaxProcs > baseProcs {
			baseProcs = run.GoMaxProcs
		}
	}
	if !stamped {
		return false, "baseline has no proc-stamped shard runs (pre-gate era): shard gate advisory"
	}
	if baseProcs < 4 {
		return false, fmt.Sprintf("baseline max gomaxprocs=%d < 4: shard gate advisory", baseProcs)
	}
	if cur.GoMaxProcs < 4 {
		return false, fmt.Sprintf("fresh run gomaxprocs < 4 (baseline max %d): shard gate advisory", baseProcs)
	}
	return true, fmt.Sprintf("baseline max gomaxprocs=%d: shard gate enforced", baseProcs)
}

// checkShardScaling asserts the scale-out contract on the fresh run:
// within each BenchmarkPipelineShards variant, kept_ev/s at shards=N
// must not fall below shards=1 and must grow monotonically with the
// shard count. It returns the violation count; lines print as FAIL when
// the caller will enforce them (hard gate) and as advisory WARN
// otherwise — a loaded or small CI machine cannot measure real parallel
// speedup, so only >= 4-proc runs measured against a >= 4-proc
// trajectory fail the build.
func checkShardScaling(cur Run, hardGate bool) int {
	const metric = "kept_ev/s"
	severity := "WARN    "
	if hardGate {
		severity = "FAIL    "
	}
	groups := map[string]map[int]float64{}
	for _, b := range cur.Benchmarks {
		prefix, _, found := strings.Cut(b.Name, "shards=")
		if !found || !strings.HasPrefix(b.Name, "BenchmarkPipelineShards") {
			continue
		}
		n, err := strconv.Atoi(b.Name[len(prefix)+len("shards="):])
		if err != nil || b.Metrics[metric] <= 0 {
			continue
		}
		if groups[prefix] == nil {
			groups[prefix] = map[int]float64{}
		}
		groups[prefix][n] = b.Metrics[metric]
	}
	violations := 0
	for prefix, byShards := range groups {
		counts := make([]int, 0, len(byShards))
		for n := range byShards {
			counts = append(counts, n)
		}
		sort.Ints(counts)
		for i, n := range counts {
			if n == 1 {
				continue
			}
			if base, ok := byShards[1]; ok && byShards[n] < base {
				violations++
				fmt.Printf("%s %sshards=%d %s %.0f below shards=1 (%.0f): sharding scales negatively\n",
					severity, prefix, n, metric, byShards[n], base)
			}
			if i > 0 && byShards[n] < byShards[counts[i-1]] {
				violations++
				fmt.Printf("%s %sshards=%d %s %.0f below shards=%d (%.0f): scaling not monotonic\n",
					severity, prefix, n, metric, byShards[n], counts[i-1], byShards[counts[i-1]])
			}
		}
	}
	return violations
}

// parseLine parses one result line of the standard bench output format:
// name, run count, then (value, unit) pairs separated by whitespace. The
// trailing -<GOMAXPROCS> suffix is stripped from the name so runs from
// machines with different CPU counts stay diffable against each other;
// its value is returned (0 when absent, i.e. GOMAXPROCS=1) so the run
// can record the procs the benchmarks actually used.
func parseLine(line string) (Benchmark, int, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, 0, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, 0, false
	}
	name := fields[0]
	procs := 0
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
			procs = n
		}
	}
	b := Benchmark{Name: name, Runs: runs, Metrics: Metrics{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, procs, len(b.Metrics) > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
