// Command benchjson converts `go test -bench` output read from stdin
// into a machine-readable JSON record, so the repository can track its
// performance trajectory (BENCH_results.json) and CI can publish it as
// an artifact. Each invocation appends one labeled run:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -out BENCH_results.json -label pr3
//
// Without -out the single run is printed to stdout. An existing -out
// file is extended (its previous runs are kept), which is what makes
// regression checks across PRs a simple diff of the same file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Metrics maps a metric unit (ns/op, B/op, allocs/op, kept_ev/s, ...)
// to its measured value.
type Metrics map[string]float64

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string  `json:"name"`
	Runs    int64   `json:"runs"`
	Metrics Metrics `json:"metrics"`
}

// Run is one labeled benchmark invocation.
type Run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the trajectory file layout: one run appended per invocation.
type File struct {
	Runs []Run `json:"runs"`
}

func main() {
	out := flag.String("out", "", "append the run to this JSON file (default: print to stdout)")
	label := flag.String("label", "", "label for this run (e.g. a PR number or git revision)")
	flag.Parse()

	run := Run{Label: *label, Date: time.Now().UTC().Format("2006-01-02")}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			run.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				run.Benchmarks = append(run.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(run.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(run); err != nil {
			fatal(err)
		}
		return
	}

	var file File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fatal(fmt.Errorf("%s: %w", *out, err))
		}
	}
	file.Runs = append(file.Runs, run)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d benchmarks to %s (%d runs)\n",
		len(run.Benchmarks), *out, len(file.Runs))
}

// parseLine parses one result line of the standard bench output format:
// name, run count, then (value, unit) pairs separated by whitespace. The
// trailing -<GOMAXPROCS> suffix is stripped from the name so runs from
// machines with different CPU counts stay diffable against each other.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Runs: runs, Metrics: Metrics{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
