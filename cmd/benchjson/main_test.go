package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// shardBench builds one BenchmarkPipelineShards entry at the given
// shard count.
func shardBench(n int, keptEvs float64) Benchmark {
	return Benchmark{
		Name:    "BenchmarkPipelineShards/shards=" + string(rune('0'+n)),
		Runs:    10,
		Metrics: Metrics{"ns/op": 100, "kept_ev/s": keptEvs},
	}
}

// TestShardGateMixedEra regresses the incomparable-baseline bug: a
// trajectory whose only multi-core-looking evidence comes from runs
// that predate proc stamping (no gomaxprocs field) must leave the
// shard-scaling contract advisory, never hard — the gate used to
// hard-fail fresh runs against baselines it could not actually compare
// with.
func TestShardGateMixedEra(t *testing.T) {
	// A realistic mixed-era trajectory straight from JSON: pr3/pr6 were
	// recorded before proc stamping existed (no gomaxprocs member at
	// all), pr9 is stamped but on a single-core CI runner.
	mixed := `{
	  "runs": [
	    {"label": "pr3", "date": "2026-01-01",
	     "benchmarks": [{"name": "BenchmarkOperatorProcess", "runs": 10, "metrics": {"ns/op": 50, "allocs/op": 0, "B/op": 1}}]},
	    {"label": "pr6", "date": "2026-02-01",
	     "benchmarks": [
	       {"name": "BenchmarkPipelineShards/shards=1", "runs": 10, "metrics": {"ns/op": 100, "kept_ev/s": 6100000}},
	       {"name": "BenchmarkPipelineShards/shards=4", "runs": 10, "metrics": {"ns/op": 90, "kept_ev/s": 15300000}}]},
	    {"label": "pr9", "date": "2026-03-01", "gomaxprocs": 1, "numcpu": 1,
	     "benchmarks": [{"name": "BenchmarkPipelineShards/shards=1", "runs": 10, "metrics": {"ns/op": 100, "kept_ev/s": 6000000}}]}
	  ]
	}`
	var file File
	if err := json.Unmarshal([]byte(mixed), &file); err != nil {
		t.Fatal(err)
	}

	cur := Run{GoMaxProcs: 8, Benchmarks: []Benchmark{shardBench(1, 6e6), shardBench(4, 15e6)}}

	// pr6 has shard benchmarks but no proc stamp; pr9 is stamped but
	// single-core. Neither makes the contract comparable: advisory.
	hard, detail := shardGate(cur, file)
	if hard {
		t.Fatalf("mixed-era baseline produced a hard gate (%s); want advisory", detail)
	}
	if !strings.Contains(detail, "advisory") {
		t.Errorf("detail = %q, want an advisory explanation", detail)
	}

	// Stamping pr6 at >= 4 procs makes it comparable: gate goes hard.
	file.Runs[1].GoMaxProcs = 8
	hard, detail = shardGate(cur, file)
	if !hard {
		t.Fatalf("stamped >=4-proc shard baseline left the gate advisory (%s)", detail)
	}

	// ... but only for a fresh run that itself has the parallelism.
	cur.GoMaxProcs = 2
	if hard, detail = shardGate(cur, file); hard {
		t.Fatalf("fresh 2-proc run got a hard gate (%s); want advisory", detail)
	}

	// A stamped big-machine run WITHOUT shard benchmarks is not shard
	// evidence either.
	var file2 File
	if err := json.Unmarshal([]byte(mixed), &file2); err != nil {
		t.Fatal(err)
	}
	file2.Runs[0].GoMaxProcs = 16 // operator bench only, no shard family
	cur.GoMaxProcs = 8
	if hard, detail = shardGate(cur, file2); hard {
		t.Fatalf("shard-benchmark-free stamped run produced a hard gate (%s); want advisory", detail)
	}
}

// TestCheckShardScaling covers the violation detection itself: below
// shards=1 and non-monotonic growth each count once, clean scaling
// counts zero.
func TestCheckShardScaling(t *testing.T) {
	clean := Run{Benchmarks: []Benchmark{
		shardBench(1, 6e6), shardBench(2, 10e6), shardBench(4, 15e6),
	}}
	if v := checkShardScaling(clean, false); v != 0 {
		t.Errorf("clean scaling reported %d violations", v)
	}
	// shards=4 below both shards=1 and shards=2: two violations.
	bad := Run{Benchmarks: []Benchmark{
		shardBench(1, 6e6), shardBench(2, 10e6), shardBench(4, 5e6),
	}}
	if v := checkShardScaling(bad, true); v != 2 {
		t.Errorf("negative scaling reported %d violations, want 2", v)
	}
}

// TestParseLineProcs pins the -N suffix recovery the gate metadata
// depends on.
func TestParseLineProcs(t *testing.T) {
	b, procs, ok := parseLine("BenchmarkPipelineShards/shards=4-8   100   123 ns/op   456 kept_ev/s")
	if !ok || procs != 8 || b.Name != "BenchmarkPipelineShards/shards=4" {
		t.Fatalf("parseLine = %+v procs=%d ok=%v", b, procs, ok)
	}
	if b.Metrics["kept_ev/s"] != 456 {
		t.Errorf("kept_ev/s = %v, want 456", b.Metrics["kept_ev/s"])
	}
	_, procs, ok = parseLine("BenchmarkFoo   100   123 ns/op")
	if !ok || procs != 0 {
		t.Fatalf("suffix-free line: procs=%d ok=%v, want 0 true", procs, ok)
	}
}
