package espice_test

import (
	"bytes"
	"fmt"

	espice "repro"
)

// Example reproduces the paper's running example (Section 3.3): build
// the utility table of Table 1, derive the CDT of Figure 2, and look up
// the threshold for dropping two events per window.
func Example() {
	ut, _ := espice.NewUtilityTable(2, 5, 1)
	utA := []int{70, 15, 10, 5, 0}
	utB := []int{0, 60, 30, 10, 0}
	for p := 0; p < 5; p++ {
		ut.Set(0, p, utA[p])
		ut.Set(1, p, utB[p])
	}
	model, _ := espice.NewModelFromTable(ut, [][]float64{
		{0.8, 0.5, 0.1, 0.2, 0.5},
		{0.2, 0.5, 0.9, 0.8, 0.5},
	})
	cdt, _ := espice.BuildCDT(model, espice.Partitioning{Rho: 1, PSize: 5, WS: 5})
	fmt.Printf("O(10) = %.1f\n", cdt.At(0, 10))
	fmt.Printf("u_th for x=2: %d\n", cdt.Threshold(0, 2))
	// Output:
	// O(10) = 2.3
	// u_th for x=2: 10
}

// ExampleParseQuery compiles a Tesla-style textual query and shows its
// structure.
func ExampleParseQuery() {
	reg := espice.NewRegistry()
	reg.Register("STR")
	reg.Register("DEF")
	q, err := espice.ParseQuery(`
		define ManMarking
		from seq(STR where kind = possession; any 1 of DEF where kind = defend)
		within 15s
		open STR
		anchored
	`, espice.QueryEnv{Registry: reg})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(q.Name, len(q.Patterns), q.Window.Mode)
	// Output: ManMarking 1 time
}

// ExampleSaveModel round-trips a trained model through its binary
// serialization.
func ExampleSaveModel() {
	ut, _ := espice.NewUtilityTable(1, 4, 1)
	ut.Set(0, 0, 42)
	model, _ := espice.NewModelFromTable(ut, [][]float64{{1, 1, 1, 1}})

	var buf bytes.Buffer
	if err := espice.SaveModel(model, &buf); err != nil {
		fmt.Println(err)
		return
	}
	loaded, err := espice.LoadModel(&buf)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(loaded.UT().At(0, 0))
	// Output: 42
}

// ExampleShedder shows the O(1) shedding decision against the running
// example's model with threshold u_th = 10.
func ExampleShedder() {
	ut, _ := espice.NewUtilityTable(2, 5, 1)
	utA := []int{70, 15, 10, 5, 0}
	utB := []int{0, 60, 30, 10, 0}
	for p := 0; p < 5; p++ {
		ut.Set(0, p, utA[p])
		ut.Set(1, p, utB[p])
	}
	model, _ := espice.NewModelFromTable(ut, [][]float64{
		{0.8, 0.5, 0.1, 0.2, 0.5},
		{0.2, 0.5, 0.9, 0.8, 0.5},
	})
	shedder, _ := espice.NewShedder(model)
	shedder.SetExactAmount(false) // literal Algorithm 2
	_ = shedder.Configure(espice.Partitioning{Rho: 1, PSize: 5, WS: 5}, 2)

	fmt.Println(shedder.Drop(0, 0, 5)) // type A, position 0: utility 70 -> keep
	fmt.Println(shedder.Drop(1, 0, 5)) // type B, position 0: utility 0 -> drop
	// Output:
	// false
	// true
}
