package espice_test

import (
	"bytes"
	"context"
	"fmt"

	espice "repro"
)

// Example reproduces the paper's running example (Section 3.3): build
// the utility table of Table 1, derive the CDT of Figure 2, and look up
// the threshold for dropping two events per window.
func Example() {
	ut, _ := espice.NewUtilityTable(2, 5, 1)
	utA := []int{70, 15, 10, 5, 0}
	utB := []int{0, 60, 30, 10, 0}
	for p := 0; p < 5; p++ {
		ut.Set(0, p, utA[p])
		ut.Set(1, p, utB[p])
	}
	model, _ := espice.NewModelFromTable(ut, [][]float64{
		{0.8, 0.5, 0.1, 0.2, 0.5},
		{0.2, 0.5, 0.9, 0.8, 0.5},
	})
	cdt, _ := espice.BuildCDT(model, espice.Partitioning{Rho: 1, PSize: 5, WS: 5})
	fmt.Printf("O(10) = %.1f\n", cdt.At(0, 10))
	fmt.Printf("u_th for x=2: %d\n", cdt.Threshold(0, 2))
	// Output:
	// O(10) = 2.3
	// u_th for x=2: 10
}

// ExampleParseQuery compiles a Tesla-style textual query and shows its
// structure.
func ExampleParseQuery() {
	reg := espice.NewRegistry()
	reg.Register("STR")
	reg.Register("DEF")
	q, err := espice.ParseQuery(`
		define ManMarking
		from seq(STR where kind = possession; any 1 of DEF where kind = defend)
		within 15s
		open STR
		anchored
	`, espice.QueryEnv{Registry: reg})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(q.Name, len(q.Patterns), q.Window.Mode)
	// Output: ManMarking 1 time
}

// ExampleSaveModel round-trips a trained model through its binary
// serialization.
func ExampleSaveModel() {
	ut, _ := espice.NewUtilityTable(1, 4, 1)
	ut.Set(0, 0, 42)
	model, _ := espice.NewModelFromTable(ut, [][]float64{{1, 1, 1, 1}})

	var buf bytes.Buffer
	if err := espice.SaveModel(model, &buf); err != nil {
		fmt.Println(err)
		return
	}
	loaded, err := espice.LoadModel(&buf)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(loaded.UT().At(0, 0))
	// Output: 42
}

// ExampleShedder shows the O(1) shedding decision against the running
// example's model with threshold u_th = 10.
func ExampleShedder() {
	ut, _ := espice.NewUtilityTable(2, 5, 1)
	utA := []int{70, 15, 10, 5, 0}
	utB := []int{0, 60, 30, 10, 0}
	for p := 0; p < 5; p++ {
		ut.Set(0, p, utA[p])
		ut.Set(1, p, utB[p])
	}
	model, _ := espice.NewModelFromTable(ut, [][]float64{
		{0.8, 0.5, 0.1, 0.2, 0.5},
		{0.2, 0.5, 0.9, 0.8, 0.5},
	})
	shedder, _ := espice.NewShedder(model)
	shedder.SetExactAmount(false) // literal Algorithm 2
	_ = shedder.Configure(espice.Partitioning{Rho: 1, PSize: 5, WS: 5}, 2)

	fmt.Println(shedder.Drop(0, 0, 5)) // type A, position 0: utility 70 -> keep
	fmt.Println(shedder.Drop(1, 0, 5)) // type B, position 0: utility 0 -> drop
	// Output:
	// false
	// true
}

// ExampleEngine runs two textual queries side by side on the multi-query
// engine: one ingress stream fans out behind per-query type filters, and
// each query delivers complex events on its own channel.
func ExampleEngine() {
	reg := espice.NewRegistry()
	reg.RegisterAll("A", "B", "C")
	qs, err := espice.ParseQueries(`
		define AB
		from seq(A; B)
		within 6 events
		slide 6

		define AC
		from seq(A; C)
		within 6 events
		slide 6
	`, espice.QueryEnv{Registry: reg})
	if err != nil {
		fmt.Println(err)
		return
	}

	eng, _ := espice.NewEngine(espice.EngineConfig{
		LatencyBound: espice.Second, // enables the global budget
	})
	var handles []*espice.EngineQuery
	for _, q := range qs {
		h, err := eng.Register(espice.EngineQueryConfig{Query: q})
		if err != nil {
			fmt.Println(err)
			return
		}
		handles = append(handles, h)
	}
	go eng.Run(context.Background())

	events := make([]espice.Event, 300)
	for i := range events {
		events[i] = espice.Event{Seq: uint64(i), TS: espice.Time(i), Type: espice.Type(i % 3)}
	}
	eng.SubmitBatch(events)
	eng.CloseInput()

	for _, h := range handles {
		n := 0
		for range h.Out() {
			n++
		}
		fmt.Printf("%s: %d complex events, %d delivered, %d filtered out\n",
			h.Name(), n, h.Stats().Delivered, h.Stats().Skipped)
	}
	// Output:
	// AB: 34 complex events, 200 delivered, 100 filtered out
	// AC: 34 complex events, 200 delivered, 100 filtered out
}

// ExampleNewPipeline deploys one query on the live sharded pipeline —
// the single-query path the README's deployment snippet shows.
func ExampleNewPipeline() {
	q := espice.Query{
		Window: espice.WindowSpec{Mode: espice.ModeCount, Count: 10, Slide: 10},
		Patterns: []*espice.CompiledPattern{espice.MustCompilePattern(espice.Pattern{
			Name: "seq(A;B)",
			Steps: []espice.PatternStep{
				{Types: []espice.Type{0}},
				{Types: []espice.Type{1}},
			},
		})},
		NumTypes: 2,
	}
	pipe, _ := espice.NewPipeline(espice.PipelineConfig{
		Operator: espice.OperatorConfig{Window: q.Window, Patterns: q.Patterns},
		Shards:   2,
	})
	go pipe.Run(context.Background())

	events := make([]espice.Event, 100)
	for i := range events {
		events[i] = espice.Event{Seq: uint64(i), TS: espice.Time(i), Type: espice.Type(i % 2)}
	}
	go func() { pipe.SubmitBatch(events); pipe.CloseInput() }()
	n := 0
	for range pipe.Out() {
		n++
	}
	fmt.Println(n, "complex events")
	// Output: 10 complex events
}

// Example_quickstart is the README quick-start: generate a synthetic
// soccer stream, train the utility model on one half, replay the other
// half under overload with the eSPICE shedder and report quality. It
// carries no output comment, so `go test` compile-checks it without
// paying for the full experiment on every run.
func Example_quickstart() {
	meta, evs, _ := espice.GenerateRTLS(espice.RTLSConfig{DurationSec: 1200, Seed: 1})
	q, _ := espice.Q1(meta, 4, espice.SelectFirst, 15)
	train, eval := espice.SplitHalf(evs)
	res, _ := espice.RunExperiment(espice.ExperimentConfig{
		Query: q, Train: train, Eval: eval, OverloadFactor: 1.2,
	}, espice.ShedESPICE)
	fmt.Println(res.Quality)
}
