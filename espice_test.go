package espice_test

import (
	"context"
	"testing"
	"time"

	espice "repro"
)

// TestPublicAPIEndToEnd walks the README quick-start path through the
// facade: dataset → query → train → overloaded run → quality.
func TestPublicAPIEndToEnd(t *testing.T) {
	meta, events, err := espice.GenerateRTLS(espice.RTLSConfig{DurationSec: 600, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	query, err := espice.Q1(meta, 3, espice.SelectFirst, 15)
	if err != nil {
		t.Fatal(err)
	}
	train, eval := espice.SplitHalf(events)
	res, err := espice.RunExperiment(espice.ExperimentConfig{
		Query: query, Train: train, Eval: eval, OverloadFactor: 1.2, Seed: 7,
	}, espice.ShedESPICE)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.Truth == 0 {
		t.Fatal("no ground truth")
	}
	if res.Quality.FNPct() > 60 {
		t.Errorf("FN = %.1f%%, implausibly high", res.Quality.FNPct())
	}
}

// TestPublicAPIRunningExample rebuilds Table 1 / Figure 2 via the facade.
func TestPublicAPIRunningExample(t *testing.T) {
	ut, err := espice.NewUtilityTable(2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	utA := []int{70, 15, 10, 5, 0}
	utB := []int{0, 60, 30, 10, 0}
	for p := 0; p < 5; p++ {
		ut.Set(0, p, utA[p])
		ut.Set(1, p, utB[p])
	}
	model, err := espice.NewModelFromTable(ut, [][]float64{
		{0.8, 0.5, 0.1, 0.2, 0.5},
		{0.2, 0.5, 0.9, 0.8, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cdt, err := espice.BuildCDT(model, espice.Partitioning{Rho: 1, PSize: 5, WS: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := cdt.Threshold(0, 2); got != 10 {
		t.Errorf("threshold = %d, want 10", got)
	}
}

// TestPublicAPILivePipeline runs a minimal live pipeline via the facade.
func TestPublicAPILivePipeline(t *testing.T) {
	p, err := espice.CompilePattern(espice.Pattern{
		Name:  "any",
		Steps: []espice.PatternStep{{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := espice.NewPipeline(espice.PipelineConfig{
		Operator: espice.OperatorConfig{
			Window:   espice.WindowSpec{Mode: espice.ModeCount, Count: 5, Slide: 5},
			Patterns: []*espice.CompiledPattern{p},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background()) }()
	count := 0
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for range pipe.Out() {
			count++
		}
	}()
	for i := 0; i < 25; i++ {
		pipe.Submit(espice.Event{Seq: uint64(i)})
	}
	pipe.CloseInput()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline did not finish")
	}
	<-collected
	if count != 5 {
		t.Errorf("complex events = %d, want 5", count)
	}
}

// TestPublicAPIScalesAndKinds covers the small helpers.
func TestPublicAPIScalesAndKinds(t *testing.T) {
	if espice.DefaultScale().NYSEMinutes <= espice.QuickScale().NYSEMinutes {
		t.Error("default scale should exceed quick scale")
	}
	if espice.ShedESPICE.String() != "eSPICE" {
		t.Error("kind naming")
	}
	reg := espice.NewRegistry()
	id := reg.Register("X")
	if reg.Name(id) != "X" {
		t.Error("registry via facade broken")
	}
	s := espice.NewSchema("a", "b")
	if i, ok := s.Index("b"); !ok || i != 1 {
		t.Error("schema via facade broken")
	}
	part := espice.ComputePartitioning(700, 1000, 0.8)
	if part.Rho != 4 {
		t.Errorf("partitioning via facade: %+v", part)
	}
}
