// Command multiquery demonstrates the multi-query engine: several
// Tesla-text queries share one RTLS ingress stream behind per-query type
// filters, each with its own trained eSPICE shedder, all coordinated by
// the global shedding budget. Mid-run a query is registered live and
// another deregistered — remaining queries lose no events.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	espice "repro"
	"repro/internal/engine"
	"repro/internal/harness"
)

// querySrc is the multi-query file format of `espice-live -queries`: a
// sequence of define blocks.
const querySrc = `
define MarkA
from seq(STR_A where kind = possession; any 2 distinct of DEF_B00, DEF_B01, DEF_B02, DEF_B03 where kind = defend)
within 15s
open STR_A
anchored

define MarkB
from seq(STR_B where kind = possession; any 2 distinct of DEF_A00, DEF_A01, DEF_A02, DEF_A03 where kind = defend)
within 15s
open STR_B
anchored
`

// lateSrc is registered while traffic is already flowing.
const lateSrc = `
define MarkAWide
from seq(STR_A where kind = possession; any 3 distinct of DEF_B00, DEF_B01, DEF_B02, DEF_B03, DEF_B04, DEF_B05 where kind = defend)
within 15s
open STR_A
anchored
`

func main() {
	log.SetFlags(0)
	meta, events, err := espice.GenerateRTLS(espice.RTLSConfig{DurationSec: 240, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	env := espice.QueryEnv{Registry: meta.Registry, Schema: meta.Schema}
	qs, err := espice.ParseQueries(querySrc, env)
	if err != nil {
		log.Fatal(err)
	}
	lateQ, err := espice.ParseQuery(lateSrc, env)
	if err != nil {
		log.Fatal(err)
	}
	train, eval := espice.SplitHalf(events)

	const delay = 100 * time.Microsecond
	eng, err := espice.NewEngine(espice.EngineConfig{
		LatencyBound: espice.Time(300 * 1000), // 300ms
		F:            0.7,
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	var consumers sync.WaitGroup
	// register trains the query on its filtered slice of the training
	// stream and returns the ingress rate at which it saturates (its
	// pipeline capacity divided by the fraction of traffic it receives).
	register := func(q espice.Query, weight float64) float64 {
		filtered := engine.FilterStream(q, train)
		tr, err := harness.Train(q, filtered, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		h, err := eng.Register(espice.EngineQueryConfig{
			Query:           q,
			Model:           tr.Model,
			Weight:          weight,
			ProcessingDelay: delay,
		})
		if err != nil {
			log.Fatal(err)
		}
		consumers.Add(1)
		go func() { // consume detections; a real deployment acts on them
			defer consumers.Done()
			n := 0
			for range h.Out() {
				n++
			}
			fmt.Printf("%-10s detected %d complex events\n", h.Name(), n)
		}()
		fmt.Printf("%-10s registered (weight %.0f, trained on %d windows)\n",
			h.Name(), weight, tr.Windows)
		share := float64(len(filtered)) / float64(len(train))
		return float64(time.Second) / float64(delay) / tr.MembershipFactor / share
	}

	// MarkA carries 4x the utility weight of MarkB: under overload the
	// budget sheds MarkB harder.
	capA := register(qs[0], 4)
	capB := register(qs[1], 1)

	done := make(chan error, 1)
	go func() { done <- eng.Run(context.Background()) }()

	// Replay at ~1.3x the bottleneck query's ingress capacity to provoke
	// the budget.
	rate := 1.3 * min(capA, capB)
	fmt.Printf("replaying %d events at %.0f ev/s\n", len(eval), rate)
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	budgetEngaged := false
	for i, ev := range eval {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		eng.Submit(ev)
		if i%500 == 0 {
			if st := eng.Stats(); st.Overloaded {
				budgetEngaged = true
			}
		}
		switch i {
		case len(eval) / 3:
			register(lateQ, 2) // live registration mid-stream
		case 2 * len(eval) / 3:
			if err := eng.Deregister("MarkB"); err != nil {
				log.Fatal(err)
			}
			fmt.Println("MarkB     deregistered mid-stream")
		}
	}
	eng.CloseInput()
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	consumers.Wait()
	st := eng.Stats()
	fmt.Printf("\nengine: %d submitted, %d delivered, %d filtered out; budget engaged: %v\n",
		st.Submitted, st.Delivered, st.Skipped, budgetEngaged)
	for _, q := range st.Queries {
		op := q.Pipeline.Operator
		fmt.Printf("%-10s delivered %-6d shed %d of %d memberships (%.1f%%)\n",
			q.Name, q.Delivered, op.MembershipsShed, op.Memberships,
			100*float64(op.MembershipsShed)/float64(max(1, op.Memberships)))
	}
}
