// Command soccer runs the man-marking query Q1 on the *live* runtime:
// real goroutines, channels, wall-clock overload detection. A trained
// eSPICE shedder guards a latency bound while the synthetic RTLS stream
// is replayed faster than the (artificially throttled) operator can
// process it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	espice "repro"
)

func main() {
	log.SetFlags(0)
	duration := flag.Int("duration", 900, "seconds of synthetic match data")
	n := flag.Int("n", 3, "number of marking defenders in the pattern")
	seed := flag.Int64("seed", 3, "generator seed")
	delay := flag.Duration("delay", 2*time.Millisecond, "artificial processing cost per membership")
	bound := flag.Duration("bound", 500*time.Millisecond, "latency bound LB")
	overload := flag.Float64("overload", 1.3, "submit rate as a multiple of operator capacity")
	flag.Parse()

	meta, events, err := espice.GenerateRTLS(espice.RTLSConfig{DurationSec: *duration, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	query, err := espice.Q1(meta, *n, espice.SelectFirst, 15)
	if err != nil {
		log.Fatal(err)
	}
	train, eval := espice.SplitHalf(events)

	// Train the utility model offline (not time-critical, Section 3.1).
	tr, err := espice.Train(query, train, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model trained: %d windows, %d complex events, N=%d\n",
		tr.Windows, tr.Matches, tr.Model.N())

	shedder, err := espice.NewShedder(tr.Model)
	if err != nil {
		log.Fatal(err)
	}
	detector, err := espice.NewOverloadDetector(espice.DetectorConfig{
		LatencyBound: espice.Time(bound.Microseconds()),
		F:            0.7,
	})
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := espice.NewPipeline(espice.PipelineConfig{
		Operator: espice.OperatorConfig{
			Window:   query.Window,
			Patterns: query.Patterns,
			Shedder:  shedder,
		},
		Detector:        detector,
		Controller:      espice.ESPICEController{S: shedder},
		PollInterval:    5 * time.Millisecond,
		ProcessingDelay: *delay,
	})
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background()) }()
	complexCount := 0
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for range pipe.Out() {
			complexCount++
		}
	}()

	// Capacity ≈ 1/delay per membership; Q1 has ~1.4 memberships/event.
	capacity := float64(time.Second) / float64(*delay) / 1.4
	rate := *overload * capacity
	fmt.Printf("replaying %d events at ~%.0f ev/s (capacity ~%.0f ev/s)\n",
		len(eval), rate, capacity)
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	for i, e := range eval {
		target := start.Add(time.Duration(i) * interval)
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		pipe.Submit(e)
	}
	pipe.CloseInput()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	<-collected

	st := pipe.Stats()
	lat := pipe.Latency()
	fmt.Printf("\nprocessed %d events, detected %d complex events\n", st.Processed, complexCount)
	fmt.Printf("shed %d of %d memberships (%.1f%%)\n",
		st.Operator.MembershipsShed, st.Operator.Memberships,
		100*float64(st.Operator.MembershipsShed)/float64(st.Operator.Memberships))
	fmt.Printf("latency: mean %.1fms  p95 %.1fms  max %.1fms  (bound %v)\n",
		float64(lat.Mean())/1000, float64(lat.Percentile(95))/1000,
		float64(lat.Max())/1000, *bound)
	fmt.Printf("latency bound violations: %d of %d events\n",
		lat.ViolationCount(espice.Time(bound.Microseconds())), lat.Len())
}
