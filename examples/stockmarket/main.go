// Command stockmarket runs the paper's stock-market workloads: query Q2
// (leading-symbol influence, sequence-with-any) and query Q3 (exact
// 20-symbol sequence) on the synthetic NYSE stream, under both overload
// rates R1 (+20%) and R2 (+40%), comparing eSPICE with the BL baseline.
// This is the scenario behind Figures 5c and 5e of the paper.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	espice "repro"
)

func main() {
	log.SetFlags(0)
	minutes := flag.Int("minutes", 120, "length of the synthetic trading stream")
	seed := flag.Int64("seed", 1, "generator seed")
	n := flag.Int("n", 20, "Q2 pattern size (number of correlated quotes)")
	ws := flag.Int("ws", 600, "Q3 window size in events")
	flag.Parse()

	cfg := espice.NYSEConfig{Minutes: *minutes, Seed: *seed, InfluenceProb: 0.95}
	cfg.HotSymbols = espice.Q4HotSymbolIDs(espice.NYSEConfig{Leaders: 5})
	cfg.HotQuotesPerMinute = 10
	meta, events, err := espice.GenerateNYSE(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, eval := espice.SplitHalf(events)
	fmt.Printf("synthetic NYSE stream: %d events, %d symbols, %d leaders\n\n",
		len(events), meta.Config.Symbols, meta.Config.Leaders)

	q2, err := espice.Q2(meta, *n, espice.SelectFirst, 240)
	if err != nil {
		log.Fatal(err)
	}
	q3, err := espice.Q3(meta, espice.SelectFirst, *ws)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\trate\tshedder\ttruth\tFN%\tFP%\tshed%")
	for _, qc := range []struct {
		name  string
		query espice.Query
	}{
		{fmt.Sprintf("Q2(n=%d)", *n), q2},
		{fmt.Sprintf("Q3(ws=%d)", *ws), q3},
	} {
		for _, rate := range []float64{1.2, 1.4} {
			for _, kind := range []espice.ShedderKind{espice.ShedESPICE, espice.ShedBL} {
				res, err := espice.RunExperiment(espice.ExperimentConfig{
					Query:          qc.query,
					Train:          train,
					Eval:           eval,
					OverloadFactor: rate,
					Seed:           *seed,
				}, kind)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Fprintf(w, "%s\t%.1fx\t%s\t%d\t%.1f\t%.1f\t%.1f\n",
					qc.name, rate, kind, res.Quality.Truth,
					res.Quality.FNPct(), res.Quality.FPPct(), 100*res.ShedFraction)
			}
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExpected shape (paper Figures 5c/5e): eSPICE far below BL on both")
	fmt.Println("queries, and near zero on the exact-sequence query Q3.")
}
