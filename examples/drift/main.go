// Command drift demonstrates the online model lifecycle end to end on a
// distribution-shifting stream: a live pipeline starts with a model
// trained on phase-1 traffic (short man-marking lags), the stream then
// shifts to phase-2 dynamics (long lags), the drift detector alarms, and
// the lifecycle retrains from post-shift windows and hot-swaps the new
// model into every shard's shedder — no pause, no operator intervention.
//
// Afterwards the swapped-out model is evaluated against the frozen one:
// on post-shift traffic the frozen model's false-positive rate degrades,
// while the auto-retrained model recovers (close to) the quality of a
// model freshly trained on the shifted distribution.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	espice "repro"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 5, "generator seed")
	duration := flag.Int("duration", 1200, "seconds per phase")
	flag.Parse()

	// Phase 1 and phase 2 differ in marking structure — a concept drift
	// in the (type, position) correlation the utility model learns.
	metaA, phaseA, err := espice.GenerateRTLS(espice.RTLSConfig{
		DurationSec: *duration, Seed: *seed,
		DefendLagMin: 1, DefendLagMax: 4, MarkersPerStriker: 8,
		NoiseDefendProb: 0.02, MarkerDefendProb: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, phaseB, err := espice.GenerateRTLS(espice.RTLSConfig{
		DurationSec: *duration, Seed: *seed + 1,
		DefendLagMin: 7, DefendLagMax: 12, MarkersPerStriker: 8,
		NoiseDefendProb: 0.02, MarkerDefendProb: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}
	query, err := espice.Q1(metaA, 3, espice.SelectFirst, 15)
	if err != nil {
		log.Fatal(err)
	}
	trainA, evalA := espice.SplitHalf(phaseA)
	trainB, evalB := espice.SplitHalf(phaseB)

	// The frozen reference: trained once, offline, on phase 1.
	frozen, err := espice.Train(query, trainA, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase-1 model: %d windows, %d matches\n", frozen.Windows, frozen.Matches)

	// --- Live pipeline with the lifecycle in charge of the model -------
	// Two shards, each with its own shedder starting from the phase-1
	// model; the lifecycle samples every window close, watches for drift
	// and swaps retrained models into both shedders in lockstep.
	const shards = 2
	shedders := make([]*espice.Shedder, shards)
	deciders := make([]espice.ShedDecider, shards)
	ctrl := make(espice.MultiController, shards)
	for i := range shedders {
		s, err := espice.NewShedder(frozen.Model)
		if err != nil {
			log.Fatal(err)
		}
		shedders[i], deciders[i], ctrl[i] = s, s, espice.ESPICEController{S: s}
	}
	det, err := espice.NewOverloadDetector(espice.DetectorConfig{
		LatencyBound: 300 * espice.Millisecond, F: 0.7,
	})
	if err != nil {
		log.Fatal(err)
	}
	const delay = 200 * time.Microsecond
	pipe, err := espice.NewPipeline(espice.PipelineConfig{
		Operator: espice.OperatorConfig{
			Window:   query.Window,
			Patterns: query.Patterns,
		},
		Shards:          shards,
		ShardDeciders:   deciders,
		Detector:        det,
		Controller:      ctrl,
		PollInterval:    5 * time.Millisecond,
		ProcessingDelay: delay,
		Lifecycle: &espice.LifecycleConfig{
			Types:              query.NumTypes,
			WarmupWindows:      8,
			MinRetrainInterval: 200 * time.Millisecond,
			// More sensitive than the defaults: shedding keeps mostly
			// events the frozen model already likes, which dampens the
			// mismatch signal — a lower threshold still catches the
			// shift without tripping on stable phase-1 traffic.
			Drift: &espice.DriftConfig{Delta: 0.01, Lambda: 1.5, MinWindows: 20},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background()) }()
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for range pipe.Out() {
		}
	}()

	// The live stream: phase-1 traffic, then the shift. Replayed above
	// capacity so the overload detector keeps the shedders active — the
	// swap happens on a *busy* pipeline.
	liveEvents := append(append([]espice.Event{}, evalA...), trainB...)
	capacity := float64(shards) * float64(time.Second) / float64(delay) / frozen.MembershipFactor
	interval := time.Duration(float64(time.Second) / (1.15 * capacity))
	batch := int(0.004 / interval.Seconds())
	if batch < 1 {
		batch = 1
	}
	if batch > 64 {
		batch = 64
	}
	fmt.Printf("\nreplaying %d live events (%d pre-shift, %d post-shift) at 1.15x capacity\n",
		len(liveEvents), len(evalA), len(trainB))
	start := time.Now()
	lastBuilds := uint64(0)
	for i := 0; i < len(liveEvents); i += batch {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		end := i + batch
		if end > len(liveEvents) {
			end = len(liveEvents)
		}
		pipe.SubmitBatch(liveEvents[i:end])
		if st := pipe.Stats(); st.Lifecycle != nil && st.Lifecycle.Builds != lastBuilds {
			lastBuilds = st.Lifecycle.Builds
			fmt.Printf("  event %6d: lifecycle build #%d swapped in (drift alarms so far: %d)\n",
				i, lastBuilds, st.Lifecycle.DriftAlarms)
		}
	}
	pipe.CloseInput()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	<-collected

	st := pipe.Stats()
	ls := st.Lifecycle
	fmt.Printf("replay done: %d events, %d shed of %d memberships\n",
		st.Processed, st.Operator.MembershipsShed, st.Operator.Memberships)
	fmt.Printf("lifecycle:   builds=%d drift-alarms=%d sampled-windows=%d mismatch-mean=%.2f\n",
		ls.Builds, ls.DriftAlarms, ls.WindowsSampled, ls.MismatchMean)
	if ls.DriftAlarms == 0 {
		fmt.Println("  (no drift alarm — unexpected for this workload)")
	}

	// --- Quality: frozen vs auto-retrained vs freshly trained ----------
	swapped := pipe.Lifecycle().Model()
	if swapped == nil {
		log.Fatal("lifecycle never produced a model")
	}
	fresh, err := espice.Train(query, trainB, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	evalFP := func(label string, tr *espice.TrainResult) float64 {
		res, err := espice.EvalWithModel(espice.ExperimentConfig{
			Query: query, Eval: evalB, OverloadFactor: 1.2,
		}, tr, espice.ShedESPICE)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %s\n", label, res.Quality)
		return res.Quality.FPPct()
	}
	fmt.Println("\n== Post-shift quality (deterministic simulator, 1.2x overload) ==")
	fpFrozen := evalFP("frozen phase-1 model", frozen)
	fpSwapped := evalFP("lifecycle-retrained model",
		&espice.TrainResult{Model: swapped, MembershipFactor: frozen.MembershipFactor})
	fpFresh := evalFP("fresh phase-2 model", fresh)
	if fpFrozen > fpFresh {
		recovery := (fpFrozen - fpSwapped) / (fpFrozen - fpFresh) * 100
		if recovery >= 100 {
			fmt.Printf("\nthe auto-retrained model recovered the full false-positive gap (FP %.1f%% vs frozen %.1f%%)\n",
				fpSwapped, fpFrozen)
		} else {
			fmt.Printf("\nthe auto-retrained model recovered %.0f%% of the false-positive gap\n", recovery)
		}
	}
	fmt.Println("the swap happened under live overloaded traffic, with no pause and no lost events")
}
