// Command quickstart demonstrates the eSPICE public API end to end on a
// minimal workload: it reproduces the paper's running example (Table 1 /
// Figure 2), then trains a utility model on a tiny soccer stream, sheds
// under overload, and reports result quality.
package main

import (
	"fmt"
	"log"

	espice "repro"
)

func main() {
	log.SetFlags(0)

	// --- Part 1: the paper's running example ------------------------------
	// Build UT from Table 1, derive the CDT of Figure 2, and look up the
	// utility threshold for dropping x=2 events per window.
	fmt.Println("== Running example (paper Section 3.3) ==")
	ut, err := newPaperTable()
	if err != nil {
		log.Fatal(err)
	}
	cdt, err := espice.BuildCDT(ut, espice.Partitioning{Rho: 1, PSize: 5, WS: 5})
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []int{0, 5, 10, 15, 30, 60, 70} {
		fmt.Printf("  O(%3d) = %.1f\n", u, cdt.At(0, u))
	}
	fmt.Printf("  utility threshold for x=2: %d (paper says 10)\n\n", cdt.Threshold(0, 2))

	// --- Part 2: end-to-end shedding on a soccer stream -------------------
	fmt.Println("== End-to-end: Q1 man-marking under 20% overload ==")
	meta, events, err := espice.GenerateRTLS(espice.RTLSConfig{DurationSec: 1200, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	query, err := espice.Q1(meta, 3, espice.SelectFirst, 15)
	if err != nil {
		log.Fatal(err)
	}
	train, eval := espice.SplitHalf(events)
	cfg := espice.ExperimentConfig{
		Query:          query,
		Train:          train,
		Eval:           eval,
		OverloadFactor: 1.2, // input rate R1 = 1.2x operator throughput
		Seed:           7,
	}
	for _, kind := range []espice.ShedderKind{espice.ShedESPICE, espice.ShedBL, espice.ShedRandom} {
		res, err := espice.RunExperiment(cfg, kind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %s  (shed %.1f%% of memberships)\n",
			kind, res.Quality, 100*res.ShedFraction)
	}
	fmt.Println("\neSPICE keeps the loss lowest because it drops only events whose")
	fmt.Println("(type, window position) rarely contributes to complex events.")
}

// newPaperTable assembles the model of the running example: Table 1's
// utilities plus position shares that reproduce Figure 2 exactly.
func newPaperTable() (*espice.Model, error) {
	ut, err := newUT()
	if err != nil {
		return nil, err
	}
	shares := [][]float64{
		{0.8, 0.5, 0.1, 0.2, 0.5}, // S(A, pos 1..5)
		{0.2, 0.5, 0.9, 0.8, 0.5}, // S(B, pos 1..5)
	}
	return espice.NewModelFromTable(ut, shares)
}

func newUT() (*espice.UtilityTable, error) {
	ut, err := espice.NewUtilityTable(2, 5, 1)
	if err != nil {
		return nil, err
	}
	utA := []int{70, 15, 10, 5, 0}
	utB := []int{0, 60, 30, 10, 0}
	for p := 0; p < 5; p++ {
		ut.Set(0, p, utA[p])
		ut.Set(1, p, utB[p])
	}
	return ut, nil
}
