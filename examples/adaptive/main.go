// Command adaptive demonstrates the model-retraining extension
// (Section 3.6): the input distribution shifts mid-stream — the
// man-marking lags change — so a model trained before the shift starts
// misjudging where contributing events sit in windows. A statistical
// drift detector (Page-Hinkley over the model-mismatch fraction, the
// trigger the paper leaves as future work) raises the retraining flag;
// retraining on post-shift windows restores quality, and in a live
// deployment Shedder.SetModel swaps the new model in atomically.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	espice "repro"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 5, "generator seed")
	duration := flag.Int("duration", 1200, "seconds per phase")
	flag.Parse()

	// Phase 1 and phase 2 differ in marking structure: different lags,
	// i.e. a concept drift in the (type, position) correlation.
	metaA, phaseA, err := espice.GenerateRTLS(espice.RTLSConfig{
		DurationSec: *duration, Seed: *seed,
		DefendLagMin: 1, DefendLagMax: 4, MarkersPerStriker: 8,
		NoiseDefendProb: 0.02, MarkerDefendProb: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, phaseB, err := espice.GenerateRTLS(espice.RTLSConfig{
		DurationSec: *duration, Seed: *seed + 1,
		DefendLagMin: 7, DefendLagMax: 12, MarkersPerStriker: 8,
		NoiseDefendProb: 0.02, MarkerDefendProb: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}

	query, err := espice.Q1(metaA, 3, espice.SelectFirst, 15)
	if err != nil {
		log.Fatal(err)
	}

	trainA, evalA := espice.SplitHalf(phaseA)
	trainB, evalB := espice.SplitHalf(phaseB)

	// Train on phase 1.
	trained, err := espice.Train(query, trainA, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase-1 model: %d windows, %d matches\n", trained.Windows, trained.Matches)

	// --- Drift detection ---------------------------------------------------
	drift, err := espice.NewDriftDetector(trained.Model, espice.DriftConfig{})
	if err != nil {
		log.Fatal(err)
	}
	feed := func(label string, events []espice.Event) {
		op, err := espice.NewOperator(espice.OperatorConfig{
			Window:        query.Window,
			Patterns:      query.Patterns,
			OnWindowClose: drift.ObserveWindow,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range events {
			op.Process(e)
		}
		op.Flush(events[len(events)-1].TS)
		fmt.Printf("  after %-22s drifted=%v mismatch-mean=%.2f (windows %d)\n",
			label, drift.Drifted(), drift.MismatchMean(), drift.Windows())
	}
	fmt.Println("\n== Drift detector (Page-Hinkley on model mismatch) ==")
	feed("phase-1 traffic:", evalA)
	feed("phase-2 traffic:", evalB)
	if !drift.Drifted() {
		fmt.Println("  (no drift flag raised — unexpected for this workload)")
	}

	// --- Quality impact and retraining -------------------------------------
	run := func(label string, train, eval []espice.Event) {
		res, err := espice.RunExperiment(espice.ExperimentConfig{
			Query:          query,
			Train:          train,
			Eval:           eval,
			OverloadFactor: 1.2,
			Seed:           *seed,
		}, espice.ShedESPICE)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s %s\n", label, res.Quality)
	}
	fmt.Println("\n== Shedding quality before/after retraining ==")
	fmt.Println("phase 1 (marking lags 1-4s):")
	run("model trained on phase 1", trainA, evalA)
	fmt.Println("phase 2 (marking lags 7-12s), STALE model:")
	run("stale model", trainA, evalB)
	fmt.Println("phase 2 after retraining:")
	run("retrained model", trainB, evalB)

	fmt.Println("\nThe detector flags the shift; retraining restores quality. In a")
	fmt.Println("deployment, Shedder.SetModel swaps the retrained model in atomically")
	fmt.Println("without pausing the event stream (see core.Shedder).")

	// --- Live sharded deployment with an atomic model swap -----------------
	// The same swap, demonstrated on the live runtime: a 2-shard pipeline
	// replays phase-2 traffic at 1.3x capacity with per-shard shedders
	// still holding the stale phase-1 model; halfway through, the
	// retrained model is swapped into both shards without pausing the
	// stream.
	fmt.Println("\n== Live 2-shard pipeline: hot-swapping the retrained model ==")
	retrained, err := espice.Train(query, trainB, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	const shards = 2
	shedders := make([]*espice.Shedder, shards)
	deciders := make([]espice.ShedDecider, shards)
	ctrl := make(espice.MultiController, shards)
	for i := range shedders {
		s, err := espice.NewShedder(trained.Model)
		if err != nil {
			log.Fatal(err)
		}
		shedders[i], deciders[i], ctrl[i] = s, s, espice.ESPICEController{S: s}
	}
	det, err := espice.NewOverloadDetector(espice.DetectorConfig{
		LatencyBound: 300 * espice.Millisecond, F: 0.7,
	})
	if err != nil {
		log.Fatal(err)
	}
	const delay = 200 * time.Microsecond
	pipe, err := espice.NewPipeline(espice.PipelineConfig{
		Operator: espice.OperatorConfig{
			Window:   query.Window,
			Patterns: query.Patterns,
		},
		Shards:          shards,
		ShardDeciders:   deciders,
		Detector:        det,
		Controller:      ctrl,
		PollInterval:    5 * time.Millisecond,
		ProcessingDelay: delay,
	})
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background()) }()
	detected := 0
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for range pipe.Out() {
			detected++
		}
	}()

	liveEvents := evalB
	if len(liveEvents) > 8000 {
		liveEvents = liveEvents[:8000]
	}
	capacity := float64(shards) * float64(time.Second) / float64(delay) / trained.MembershipFactor
	interval := time.Duration(float64(time.Second) / (1.3 * capacity))
	start := time.Now()
	// Cap each batch at ~4ms of stream time: SubmitBatch stamps the whole
	// batch with one arrival time, and longer spans would skew the
	// latency trace and the detector's queue samples at low rates.
	batch := int(0.004 / interval.Seconds())
	if batch < 1 {
		batch = 1
	}
	if batch > 64 {
		batch = 64
	}
	for i := 0; i < len(liveEvents); i += batch {
		if i >= len(liveEvents)/2 && i-batch < len(liveEvents)/2 {
			for _, s := range shedders {
				if err := s.SetModel(retrained.Model); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Println("  mid-stream: retrained model swapped into both shard shedders")
		}
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		end := i + batch
		if end > len(liveEvents) {
			end = len(liveEvents)
		}
		pipe.SubmitBatch(liveEvents[i:end])
	}
	pipe.CloseInput()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	<-collected
	st := pipe.Stats()
	fmt.Printf("  replayed %d events, detected %d complex events, shed %d of %d memberships\n",
		st.Processed, detected, st.Operator.MembershipsShed, st.Operator.Memberships)
	for i, ss := range st.Shards {
		fmt.Printf("  shard %d: %d memberships, %d shed, %d windows closed\n",
			i, ss.Memberships, ss.Shed, ss.WindowsClosed)
	}
}
