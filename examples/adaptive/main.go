// Command adaptive demonstrates the model-retraining extension
// (Section 3.6): the input distribution shifts mid-stream — the
// man-marking lags change — so a model trained before the shift starts
// misjudging where contributing events sit in windows. A statistical
// drift detector (Page-Hinkley over the model-mismatch fraction, the
// trigger the paper leaves as future work) raises the retraining flag;
// retraining on post-shift windows restores quality, and in a live
// deployment Shedder.SetModel swaps the new model in atomically.
package main

import (
	"flag"
	"fmt"
	"log"

	espice "repro"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 5, "generator seed")
	duration := flag.Int("duration", 1200, "seconds per phase")
	flag.Parse()

	// Phase 1 and phase 2 differ in marking structure: different lags,
	// i.e. a concept drift in the (type, position) correlation.
	metaA, phaseA, err := espice.GenerateRTLS(espice.RTLSConfig{
		DurationSec: *duration, Seed: *seed,
		DefendLagMin: 1, DefendLagMax: 4, MarkersPerStriker: 8,
		NoiseDefendProb: 0.02, MarkerDefendProb: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, phaseB, err := espice.GenerateRTLS(espice.RTLSConfig{
		DurationSec: *duration, Seed: *seed + 1,
		DefendLagMin: 7, DefendLagMax: 12, MarkersPerStriker: 8,
		NoiseDefendProb: 0.02, MarkerDefendProb: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}

	query, err := espice.Q1(metaA, 3, espice.SelectFirst, 15)
	if err != nil {
		log.Fatal(err)
	}

	trainA, evalA := espice.SplitHalf(phaseA)
	trainB, evalB := espice.SplitHalf(phaseB)

	// Train on phase 1.
	trained, err := espice.Train(query, trainA, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase-1 model: %d windows, %d matches\n", trained.Windows, trained.Matches)

	// --- Drift detection ---------------------------------------------------
	drift, err := espice.NewDriftDetector(trained.Model, espice.DriftConfig{})
	if err != nil {
		log.Fatal(err)
	}
	feed := func(label string, events []espice.Event) {
		op, err := espice.NewOperator(espice.OperatorConfig{
			Window:        query.Window,
			Patterns:      query.Patterns,
			OnWindowClose: drift.ObserveWindow,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range events {
			op.Process(e)
		}
		op.Flush(events[len(events)-1].TS)
		fmt.Printf("  after %-22s drifted=%v mismatch-mean=%.2f (windows %d)\n",
			label, drift.Drifted(), drift.MismatchMean(), drift.Windows())
	}
	fmt.Println("\n== Drift detector (Page-Hinkley on model mismatch) ==")
	feed("phase-1 traffic:", evalA)
	feed("phase-2 traffic:", evalB)
	if !drift.Drifted() {
		fmt.Println("  (no drift flag raised — unexpected for this workload)")
	}

	// --- Quality impact and retraining -------------------------------------
	run := func(label string, train, eval []espice.Event) {
		res, err := espice.RunExperiment(espice.ExperimentConfig{
			Query:          query,
			Train:          train,
			Eval:           eval,
			OverloadFactor: 1.2,
			Seed:           *seed,
		}, espice.ShedESPICE)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s %s\n", label, res.Quality)
	}
	fmt.Println("\n== Shedding quality before/after retraining ==")
	fmt.Println("phase 1 (marking lags 1-4s):")
	run("model trained on phase 1", trainA, evalA)
	fmt.Println("phase 2 (marking lags 7-12s), STALE model:")
	run("stale model", trainA, evalB)
	fmt.Println("phase 2 after retraining:")
	run("retrained model", trainB, evalB)

	fmt.Println("\nThe detector flags the shift; retraining restores quality. In a")
	fmt.Println("deployment, Shedder.SetModel swaps the retrained model in atomically")
	fmt.Println("without pausing the event stream (see core.Shedder).")
}
